(** Heuristic tests: the Table-1 taxonomy, static annotation passes on
    hand-computed DAGs, level lists vs reverse walk, register liveness,
    and the dynamic scheduler-state heuristics. *)

open Dagsched
open Helpers

(* ------------------------------------------------------------------ *)
(* taxonomy (Table 1) *)

let test_26_heuristics () =
  check_int "exactly 26 heuristics" 26 (List.length Heuristic.all_26)

let test_category_counts () =
  (* Table 1 row counts: stall 4, class 2, critical path 7, uncovering 5,
     structural 4, register usage 4 *)
  let count c =
    List.length (List.filter (fun h -> Heuristic.category h = c) Heuristic.all_26)
  in
  check_int "stall behavior" 4 (count Heuristic.Stall_behavior);
  check_int "instruction class" 2 (count Heuristic.Instruction_class);
  check_int "critical path" 7 (count Heuristic.Critical_path);
  check_int "uncovering" 5 (count Heuristic.Uncovering);
  check_int "structural" 4 (count Heuristic.Structural);
  check_int "register usage" 4 (count Heuristic.Register_usage)

let test_table1_passes () =
  let check_pass h p =
    check_bool (Heuristic.to_string h) true (Heuristic.calc_pass h = p)
  in
  check_pass Heuristic.Interlock_with_previous Heuristic.V;
  check_pass Heuristic.Earliest_execution_time Heuristic.V;
  check_pass Heuristic.Interlock_with_child Heuristic.A;
  check_pass Heuristic.Execution_time Heuristic.A;
  check_pass Heuristic.Alternate_type Heuristic.V;
  check_pass Heuristic.Fp_unit_busy Heuristic.V;
  check_pass Heuristic.Max_path_to_leaf Heuristic.B;
  check_pass Heuristic.Max_delay_to_leaf Heuristic.B;
  check_pass Heuristic.Max_path_from_root Heuristic.F;
  check_pass Heuristic.Max_delay_from_root Heuristic.F;
  check_pass Heuristic.Earliest_start_time Heuristic.F;
  check_pass Heuristic.Latest_start_time Heuristic.B;
  check_pass Heuristic.Slack Heuristic.FB;
  check_pass Heuristic.Num_children Heuristic.A;
  check_pass Heuristic.Num_single_parent_children Heuristic.V;
  check_pass Heuristic.Num_uncovered_children Heuristic.V;
  check_pass Heuristic.Num_parents Heuristic.A;
  check_pass Heuristic.Num_descendants Heuristic.B;
  check_pass Heuristic.Registers_born Heuristic.A;
  check_pass Heuristic.Birthing_instruction Heuristic.A

let test_table1_transitive_markers () =
  (* the ** rows of Table 1 *)
  let sensitive =
    List.filter Heuristic.transitive_sensitive Heuristic.all_26
  in
  check_int "nine ** rows" 9 (List.length sensitive);
  check_bool "EET marked" true
    (Heuristic.transitive_sensitive Heuristic.Earliest_execution_time);
  check_bool "#children marked" true
    (Heuristic.transitive_sensitive Heuristic.Num_children);
  check_bool "slack marked" true (Heuristic.transitive_sensitive Heuristic.Slack);
  check_bool "max path to leaf NOT marked" false
    (Heuristic.transitive_sensitive Heuristic.Max_path_to_leaf)

let test_dynamic_classification () =
  check_bool "EET dynamic" true (Heuristic.is_dynamic Heuristic.Earliest_execution_time);
  check_bool "exec time static" false (Heuristic.is_dynamic Heuristic.Execution_time)

(* ------------------------------------------------------------------ *)
(* static pass on a hand-computed DAG *)

(* ld (lat 2) -> add -> st, plus an independent add
     0: ld [%fp - 8], %o1        est 0
     1: add %o1, 1, %o2          est 2 (RAW 2)
     2: st %o2, [%fp - 16]       est 3 (RAW 1)
     3: add %o3, 1, %o4          est 0, independent *)
let hand_asm = "ld [%fp - 8], %o1\nadd %o1, 1, %o2\nst %o2, [%fp - 16]\nadd %o3, 1, %o4"

let hand_annot ?traversal () =
  Static_pass.compute ?traversal (dag_of_asm ~alg:Builder.Table_forward hand_asm)

let test_est () =
  let a = hand_annot () in
  Alcotest.(check (array int)) "EST" [| 0; 2; 3; 0 |] a.Annot.est

let test_paths () =
  let a = hand_annot () in
  Alcotest.(check (array int)) "max path to leaf" [| 2; 1; 0; 0 |] a.Annot.max_path_to_leaf;
  Alcotest.(check (array int)) "max path from root" [| 0; 1; 2; 0 |] a.Annot.max_path_from_root;
  (* delay to leaf includes the leaf's execution time *)
  Alcotest.(check (array int)) "max delay to leaf" [| 4; 2; 1; 1 |] a.Annot.max_delay_to_leaf;
  Alcotest.(check (array int)) "max delay from root" [| 0; 2; 3; 0 |] a.Annot.max_delay_from_root

let test_lst_slack () =
  let a = hand_annot () in
  check_int "critical path" 4 a.Annot.critical_path_length;
  (* chain nodes have zero slack; the independent add has cp - 1 *)
  Alcotest.(check (array int)) "slack" [| 0; 0; 0; 3 |] a.Annot.slack;
  Array.iteri
    (fun i lst -> check_bool "LST >= EST" true (lst >= a.Annot.est.(i)))
    a.Annot.lst

let test_descendant_measures () =
  let a = hand_annot () in
  Alcotest.(check (array int)) "#descendants" [| 2; 1; 0; 0 |] a.Annot.num_descendants;
  (* node 0's descendants: add (1) + st (1) = 2 *)
  check_int "sum exec of descendants" 2 a.Annot.sum_exec_of_descendants.(0)

let test_level_lists_match_reverse_walk () =
  let a = hand_annot ~traversal:Static_pass.Reverse_walk () in
  let b = hand_annot ~traversal:Static_pass.Level_lists () in
  Alcotest.(check (array int)) "path to leaf" a.Annot.max_path_to_leaf b.Annot.max_path_to_leaf;
  Alcotest.(check (array int)) "delay to leaf" a.Annot.max_delay_to_leaf b.Annot.max_delay_to_leaf;
  Alcotest.(check (array int)) "lst" a.Annot.lst b.Annot.lst;
  Alcotest.(check (array int)) "slack" a.Annot.slack b.Annot.slack

let test_levels () =
  let dag = dag_of_asm hand_asm in
  let levels = Level.compute dag in
  Alcotest.(check (array int)) "levels" [| 0; 1; 2; 0 |] levels.Level.level_of;
  check_int "max level" 2 levels.Level.max_level;
  (* backward iteration visits children before parents *)
  let seen = ref [] in
  Level.iter_backward (fun i -> seen := i :: !seen) levels;
  let visit_order = List.rev !seen in
  let pos i =
    let rec find k = function
      | [] -> -1
      | x :: r -> if x = i then k else find (k + 1) r
    in
    find 0 visit_order
  in
  check_bool "child before parent" true (pos 2 < pos 1 && pos 1 < pos 0)

(* ------------------------------------------------------------------ *)
(* liveness *)

let test_registers_born_killed () =
  let insns = Array.of_list (parse "ld [%fp - 8], %o1\nadd %o1, 1, %o2\nst %o2, [%fp - 16]") in
  (* nothing live out: o1 dies at the add, o2 dies at the store — and the
     live-in %fp base register dies at its last use (the store) too *)
  let r = Liveness.compute ~live_out:(fun _ -> false) insns in
  Alcotest.(check (array int)) "born" [| 1; 1; 0 |] r.Liveness.born;
  Alcotest.(check (array int)) "killed" [| 0; 1; 2 |] r.Liveness.killed;
  Alcotest.(check (array int)) "net" [| 1; 0; -2 |] r.Liveness.net

let test_liveness_live_out () =
  let insns = Array.of_list (parse "mov 1, %o1\nadd %o1, 1, %o2") in
  (* all live out: the add does not kill o1's value only if o1 escapes *)
  let all = Liveness.compute ~live_out:(fun _ -> true) insns in
  check_int "o1 not killed when live out" 0 all.Liveness.killed.(1);
  let none = Liveness.compute ~live_out:(fun _ -> false) insns in
  check_int "o1 killed when dead out" 1 none.Liveness.killed.(1)

let test_dead_def_not_born () =
  let insns = Array.of_list (parse "mov 1, %o1\nmov 2, %o1\nst %o1, [%fp - 8]") in
  let r = Liveness.compute ~live_out:(fun _ -> false) insns in
  check_int "dead def births nothing" 0 r.Liveness.born.(0);
  check_int "live def births" 1 r.Liveness.born.(1)

(* ------------------------------------------------------------------ *)
(* dynamic heuristics *)

let test_earliest_execution_time_updates () =
  let dag = dag_of_asm "ld [%fp - 8], %o1\nadd %o1, 1, %o2" in
  let st = Dyn_state.create dag Dyn_state.Forward in
  check_int "initially 0" 0 st.Dyn_state.earliest_exec.(1);
  Dyn_state.schedule st 0 ~at:0;
  check_int "updated by arc delay" 2 st.Dyn_state.earliest_exec.(1)

let test_interlock_with_previous () =
  let dag = dag_of_asm "ld [%fp - 8], %o1\nadd %o1, 1, %o2\nadd %o3, 1, %o4" in
  let st = Dyn_state.create dag Dyn_state.Forward in
  Dyn_state.schedule st 0 ~at:0;
  st.Dyn_state.time <- 1;
  check_int "dependent candidate interlocks" 1 (Dynamic.interlock_with_previous st 1);
  check_int "independent does not" 0 (Dynamic.interlock_with_previous st 2)

let test_uncovering_chain () =
  (* two children, one shared with another parent *)
  let dag =
    dag_of_asm "mov 1, %o1\nmov 2, %o2\nadd %o1, 1, %o3\nadd %o1, %o2, %o4"
  in
  let st = Dyn_state.create dag Dyn_state.Forward in
  (* node 0's children: 2 (single parent) and 3 (two parents) *)
  check_int "#children" 2 (Dag.n_children dag 0);
  check_int "#single-parent children" 1 (Dynamic.num_single_parent_children st 0);
  check_int "#uncovered" 1 (Dynamic.num_uncovered_children st 0);
  (* after scheduling node 1, node 3 becomes single-parent w.r.t. node 0 *)
  Dyn_state.schedule st 1 ~at:0;
  check_int "#single-parent now 2" 2 (Dynamic.num_single_parent_children st 0)

let test_uncovered_respects_delay () =
  (* a child over a 2-cycle arc is not uncovered *)
  let dag = dag_of_asm "ld [%fp - 8], %o1\nadd %o1, 1, %o2" in
  let st = Dyn_state.create dag Dyn_state.Forward in
  check_int "not uncovered by long delay" 0 (Dynamic.num_uncovered_children st 0);
  check_int "but is a single-parent child" 1 (Dynamic.num_single_parent_children st 0)

let test_uncovering_invariant () =
  (* #uncovered <= #single-parent <= #children at every step *)
  let b = random_block 90210 in
  let dag = Builder.build Builder.Table_forward Opts.default b in
  let st = Dyn_state.create dag Dyn_state.Forward in
  for i = 0 to Dag.length dag - 1 do
    let u = Dynamic.num_uncovered_children st i in
    let s = Dynamic.num_single_parent_children st i in
    let c = Dag.n_children dag i in
    check_bool "u <= s" true (u <= s);
    check_bool "s <= c" true (s <= c)
  done

let test_sum_delays_single_parent () =
  let dag = dag_of_asm "ld [%fp - 8], %o1\nadd %o1, 1, %o2" in
  let st = Dyn_state.create dag Dyn_state.Forward in
  check_int "sum of delays" 2 (Dynamic.sum_delays_to_single_parent_children st 0)

let test_alternate_type () =
  let dag = dag_of_asm "add %o1, 1, %o2\nfaddd %f0, %f2, %f4\nsub %o3, 1, %o4" in
  let st = Dyn_state.create dag Dyn_state.Forward in
  check_int "no last: 0" 0 (Dynamic.alternate_type st 1);
  Dyn_state.schedule st 0 ~at:0;
  check_int "fp differs from int" 1 (Dynamic.alternate_type st 1);
  check_int "int same as int" 0 (Dynamic.alternate_type st 2)

let test_fp_unit_busy () =
  let dag =
    Builder.build Builder.Table_forward
      { Opts.default with Opts.model = Latency.deep_fp }
      (block_of_asm "fdivd %f0, %f2, %f4\nfdivd %f6, %f8, %f10")
  in
  let st = Dyn_state.create dag Dyn_state.Forward in
  check_int "unit free initially" 0 (Dynamic.fp_unit_busy st 0);
  Dyn_state.schedule st 0 ~at:0;
  st.Dyn_state.time <- 1;
  check_bool "second divide sees busy unit" true (Dynamic.fp_unit_busy st 1 > 0)

let test_birthing () =
  (* backward pass: RAW parents of the last scheduled node get the boost *)
  let dag = dag_of_asm "mov 1, %o1\nadd %o1, 1, %o2\nmov 3, %o3" in
  let st = Dyn_state.create dag Dyn_state.Backward in
  Dyn_state.schedule st 1 ~at:0;
  check_int "RAW parent boosted" 1 (Dynamic.birthing_instruction st 0);
  check_int "unrelated not boosted" 0 (Dynamic.birthing_instruction st 2)

let test_evaluate_dispatch () =
  let dag = dag_of_asm hand_asm in
  let annot = Static_pass.compute dag in
  let st = Dyn_state.create dag Dyn_state.Forward in
  List.iter
    (fun h ->
      (* every heuristic must evaluate without raising *)
      ignore (Evaluate.value h ~annot ~st 0))
    (Heuristic.Original_order :: Heuristic.all_26);
  check_int "original order is the index" 3
    (Evaluate.value Heuristic.Original_order ~annot ~st 3);
  check_int "exec time via evaluate" 2
    (Evaluate.value Heuristic.Execution_time ~annot ~st 0)

(* ------------------------------------------------------------------ *)
(* Table 1 completeness audit: every heuristic reachable through
   [Evaluate.value] is compared against an independently written slow
   specification — memoized recursion over the arc lists instead of the
   production sweeps and counters — on reference blocks, at every step of
   a partial schedule so the dynamic heuristics are exercised against
   live state. *)

module Slow = struct
  let memo n f =
    let cache = Array.make n None in
    let rec g i =
      match cache.(i) with
      | Some v -> v
      | None ->
          let v = f g i in
          cache.(i) <- Some v;
          v
    in
    g

  type t = {
    exec : int -> int;
    path_to_leaf : int -> int;
    delay_to_leaf : int -> int;
    path_from_root : int -> int;
    delay_from_root : int -> int;
    est : int -> int;
    lst : int -> int;
    descendants : int -> int list;
    regs : Liveness.result;
  }

  let make dag =
    let n = Dag.length dag in
    let model = Dag.model dag in
    let exec i = model.Latency.exec_time (Dag.insn dag i) in
    let over_succs f base self i =
      List.fold_left (fun m (a : Dag.arc) -> f m a (self a.Dag.dst)) (base i)
        (Dag.succs dag i)
    in
    let over_preds f base self i =
      List.fold_left (fun m (a : Dag.arc) -> f m a (self a.Dag.src)) (base i)
        (Dag.preds dag i)
    in
    let path_to_leaf =
      memo n (over_succs (fun m _ v -> max m (v + 1)) (fun _ -> 0))
    in
    let delay_to_leaf =
      memo n (over_succs (fun m a v -> max m (v + a.Dag.latency)) exec)
    in
    let path_from_root =
      memo n (over_preds (fun m _ v -> max m (v + 1)) (fun _ -> 0))
    in
    let delay_from_root =
      memo n (over_preds (fun m a v -> max m (v + a.Dag.latency)) (fun _ -> 0))
    in
    let est =
      memo n (over_preds (fun m a v -> max m (v + a.Dag.latency)) (fun _ -> 0))
    in
    let cp = ref 0 in
    for i = 0 to n - 1 do
      cp := max !cp (est i + exec i)
    done;
    let cp = !cp in
    let lst =
      memo n
        (over_succs
           (fun m a v -> min m (v - a.Dag.latency))
           (fun i -> cp - exec i))
    in
    let descendants i =
      let seen = Array.make n false in
      let rec visit j =
        List.iter
          (fun (a : Dag.arc) ->
            if not seen.(a.Dag.dst) then begin
              seen.(a.Dag.dst) <- true;
              visit a.Dag.dst
            end)
          (Dag.succs dag j)
      in
      visit i;
      seen.(i) <- false;
      let out = ref [] in
      for j = n - 1 downto 0 do
        if seen.(j) then out := j :: !out
      done;
      !out
    in
    let regs = Liveness.compute (Array.init n (Dag.insn dag)) in
    { exec; path_to_leaf; delay_to_leaf; path_from_root; delay_from_root;
      est; lst; descendants; regs }

  (* scheduling-direction helpers, recomputed from the raw arc lists *)
  let dir_succs (st : Dyn_state.t) i =
    match st.Dyn_state.direction with
    | Dyn_state.Forward -> Dag.succs st.Dyn_state.dag i
    | Dyn_state.Backward -> Dag.preds st.Dyn_state.dag i

  let dir_peer (st : Dyn_state.t) (a : Dag.arc) =
    match st.Dyn_state.direction with
    | Dyn_state.Forward -> a.Dag.dst
    | Dyn_state.Backward -> a.Dag.src

  let dir_preds (st : Dyn_state.t) i =
    match st.Dyn_state.direction with
    | Dyn_state.Forward -> Dag.preds st.Dyn_state.dag i
    | Dyn_state.Backward -> Dag.succs st.Dyn_state.dag i

  let unscheduled_dir_preds st p =
    List.length
      (List.filter
         (fun (a : Dag.arc) ->
           let parent =
             match st.Dyn_state.direction with
             | Dyn_state.Forward -> a.Dag.src
             | Dyn_state.Backward -> a.Dag.dst
           in
           not st.Dyn_state.scheduled.(parent))
         (dir_preds st p))

  (* earliest execution time from first principles: the latest
     (issue time + arc delay) over scheduled direction-predecessors *)
  let eet st i =
    List.fold_left
      (fun m (a : Dag.arc) ->
        let p =
          match st.Dyn_state.direction with
          | Dyn_state.Forward -> a.Dag.src
          | Dyn_state.Backward -> a.Dag.dst
        in
        if st.Dyn_state.scheduled.(p) then
          max m (st.Dyn_state.sched_time.(p) + a.Dag.latency)
        else m)
      0 (dir_preds st i)

  let single_parent_arcs st i =
    List.filter (fun a -> unscheduled_dir_preds st (dir_peer st a) = 1)
      (dir_succs st i)

  let value (h : Heuristic.t) slow (st : Dyn_state.t) i =
    let dag = st.Dyn_state.dag in
    let model = Dag.model dag in
    let succs = Dag.succs dag i and preds = Dag.preds dag i in
    let lats arcs = List.map (fun (a : Dag.arc) -> a.Dag.latency) arcs in
    let sum = List.fold_left ( + ) 0 in
    let maxl = List.fold_left max 0 in
    match h with
    | Heuristic.Interlock_with_previous -> (
        match st.Dyn_state.last with
        | None -> 0
        | Some last ->
            if
              List.exists
                (fun (a : Dag.arc) ->
                  dir_peer st a = i && a.Dag.latency > 1)
                (dir_succs st last)
            then 1
            else 0)
    | Heuristic.Earliest_execution_time -> eet st i
    | Heuristic.Interlock_with_child ->
        if List.exists (fun (a : Dag.arc) -> a.Dag.latency > 1) succs then 1
        else 0
    | Heuristic.Execution_time -> slow.exec i
    | Heuristic.Alternate_type -> (
        match st.Dyn_state.last with
        | None -> 0
        | Some last ->
            if
              Funit.of_insn (Dag.insn dag i)
              <> Funit.of_insn (Dag.insn dag last)
            then 1
            else 0)
    | Heuristic.Fp_unit_busy ->
        let insn = Dag.insn dag i in
        if model.Latency.fp_busy insn > 0 then begin
          (* replay the unit reservations from the schedule so far *)
          let u = Funit.of_insn insn in
          let free = ref 0 in
          for j = 0 to Dag.length dag - 1 do
            let ij = Dag.insn dag j in
            let busy = model.Latency.fp_busy ij in
            if st.Dyn_state.scheduled.(j) && busy > 0 && Funit.of_insn ij = u
            then free := max !free (st.Dyn_state.sched_time.(j) + busy)
          done;
          max 0 (!free - st.Dyn_state.time)
        end
        else 0
    | Heuristic.Max_path_to_leaf -> slow.path_to_leaf i
    | Heuristic.Max_delay_to_leaf -> slow.delay_to_leaf i
    | Heuristic.Max_path_from_root -> slow.path_from_root i
    | Heuristic.Max_delay_from_root -> slow.delay_from_root i
    | Heuristic.Earliest_start_time -> slow.est i
    | Heuristic.Latest_start_time -> slow.lst i
    | Heuristic.Slack -> slow.lst i - slow.est i
    | Heuristic.Num_children -> List.length succs
    | Heuristic.Delays_to_children Heuristic.Sum -> sum (lats succs)
    | Heuristic.Delays_to_children Heuristic.Max -> maxl (lats succs)
    | Heuristic.Num_single_parent_children ->
        List.length (single_parent_arcs st i)
    | Heuristic.Sum_delays_to_single_parent_children ->
        sum (lats (single_parent_arcs st i))
    | Heuristic.Num_uncovered_children ->
        List.length
          (List.filter
             (fun (a : Dag.arc) ->
               a.Dag.latency <= 1
               && eet st (dir_peer st a) <= st.Dyn_state.time + 1)
             (single_parent_arcs st i))
    | Heuristic.Num_parents -> List.length preds
    | Heuristic.Delays_from_parents Heuristic.Sum -> sum (lats preds)
    | Heuristic.Delays_from_parents Heuristic.Max -> maxl (lats preds)
    | Heuristic.Num_descendants -> List.length (slow.descendants i)
    | Heuristic.Sum_exec_of_descendants ->
        sum (List.map slow.exec (slow.descendants i))
    | Heuristic.Registers_born -> slow.regs.Liveness.born.(i)
    | Heuristic.Registers_killed -> slow.regs.Liveness.killed.(i)
    | Heuristic.Liveness -> slow.regs.Liveness.net.(i)
    | Heuristic.Birthing_instruction -> (
        match st.Dyn_state.last with
        | None -> 0
        | Some last ->
            (* a RAW arc between [last] and [i] in the scheduling
               direction: backward, [i] is a RAW parent of [last];
               forward (mirrored), a RAW child *)
            if
              List.exists
                (fun (a : Dag.arc) ->
                  a.Dag.kind = Dep.Raw && dir_peer st a = i)
                (dir_succs st last)
            then 1
            else 0)
    | Heuristic.Original_order -> i
end

(* Every constructor [Evaluate.value] dispatches on: the 26 Table-1 rows
   (Sum forms), the Max forms of the two φ rows, and the tie-break. *)
let all_evaluable =
  Heuristic.Original_order
  :: Heuristic.Delays_to_children Heuristic.Max
  :: Heuristic.Delays_from_parents Heuristic.Max
  :: Heuristic.all_26

let audit_dag dag direction =
  let annot = Static_pass.compute dag in
  let slow = Slow.make dag in
  let st = Dyn_state.create dag direction in
  let audit_step step =
    for i = 0 to Dag.length dag - 1 do
      List.iter
        (fun h ->
          let fast = Evaluate.value h ~annot ~st i in
          let want = Slow.value h slow st i in
          if fast <> want then
            Alcotest.failf "step %d, node %d, %s: fast %d, slow spec %d" step
              i (Heuristic.to_string h) fast want)
        all_evaluable
    done
  in
  (* audit against the empty schedule, then after every issue of a
     greedy lowest-index list schedule *)
  audit_step (-1);
  let step = ref 0 in
  while not (Dyn_state.complete st) do
    let picked = ref false in
    for i = 0 to Dag.length dag - 1 do
      if (not !picked) && Dyn_state.ready st i then begin
        picked := true;
        Dyn_state.schedule st i ~at:st.Dyn_state.time;
        audit_step !step;
        incr step
      end
    done;
    st.Dyn_state.time <- st.Dyn_state.time + 1
  done

let audit_asm =
  "ld [%fp - 8], %o1\n\
   add %o1, 1, %o2\n\
   fdivd %f0, %f2, %f4\n\
   faddd %f4, %f6, %f8\n\
   st %o2, [%fp - 16]\n\
   fdivd %f8, %f10, %f12\n\
   add %o3, %o2, %o4\n\
   st %o4, [%fp - 24]"

let test_table1_audit_forward () =
  let opts = { Opts.default with Opts.model = Latency.deep_fp } in
  audit_dag (dag_of_asm ~opts audit_asm) Dyn_state.Forward

let test_table1_audit_backward () =
  let opts = { Opts.default with Opts.model = Latency.deep_fp } in
  audit_dag (dag_of_asm ~opts audit_asm) Dyn_state.Backward

let test_table1_audit_random () =
  List.iter
    (fun seed ->
      let b = random_block seed in
      let dag = Builder.build Builder.Table_forward Opts.default b in
      audit_dag dag Dyn_state.Forward;
      audit_dag dag Dyn_state.Backward)
    [ 7; 1991; 90210 ]

let suite =
  [ quick "26 heuristics" test_26_heuristics;
    quick "category counts" test_category_counts;
    quick "table 1 passes" test_table1_passes;
    quick "table 1 transitive markers" test_table1_transitive_markers;
    quick "dynamic classification" test_dynamic_classification;
    quick "EST" test_est;
    quick "paths" test_paths;
    quick "LST and slack" test_lst_slack;
    quick "descendant measures" test_descendant_measures;
    quick "level lists = reverse walk" test_level_lists_match_reverse_walk;
    quick "levels" test_levels;
    quick "registers born/killed" test_registers_born_killed;
    quick "liveness live-out" test_liveness_live_out;
    quick "dead def not born" test_dead_def_not_born;
    quick "EET updates" test_earliest_execution_time_updates;
    quick "interlock with previous" test_interlock_with_previous;
    quick "uncovering chain" test_uncovering_chain;
    quick "uncovered respects delay" test_uncovered_respects_delay;
    quick "uncovering invariant" test_uncovering_invariant;
    quick "sum delays single-parent" test_sum_delays_single_parent;
    quick "alternate type" test_alternate_type;
    quick "fp unit busy" test_fp_unit_busy;
    quick "birthing" test_birthing;
    quick "evaluate dispatch" test_evaluate_dispatch;
    quick "table 1 audit (forward)" test_table1_audit_forward;
    quick "table 1 audit (backward)" test_table1_audit_backward;
    quick "table 1 audit (random blocks)" test_table1_audit_random ]
