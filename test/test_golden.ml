(** Golden values: every heuristic of Table 1 evaluated on a
    hand-computed DAG, pinned exactly.  Any change to def/use extraction,
    arc latencies, the static passes or the dynamic evaluators that shifts
    a value trips this test.

    The block (table-forward, simple_risc, default options):

    {v
      0: ld  [%fp - 8], %o1     arcs: 0 -RAW 2-> 1 -RAW 1-> 2
      1: add %o1, 1, %o2              (node 3 independent)
      2: st  %o2, [%fp - 16]
      3: add %o3, 1, %o4
    v} *)

open Dagsched
open Helpers

let asm = "ld [%fp - 8], %o1\nadd %o1, 1, %o2\nst %o2, [%fp - 16]\nadd %o3, 1, %o4"

let golden_fresh =
  (* heuristic, expected values for nodes 0..3 in a fresh scheduler state *)
  [ (Heuristic.Interlock_with_previous, [| 0; 0; 0; 0 |]);
    (Heuristic.Earliest_execution_time, [| 0; 0; 0; 0 |]);
    (Heuristic.Interlock_with_child, [| 1; 0; 0; 0 |]);
    (Heuristic.Execution_time, [| 2; 1; 1; 1 |]);
    (Heuristic.Alternate_type, [| 0; 0; 0; 0 |]);
    (Heuristic.Fp_unit_busy, [| 0; 0; 0; 0 |]);
    (Heuristic.Max_path_to_leaf, [| 2; 1; 0; 0 |]);
    (Heuristic.Max_delay_to_leaf, [| 4; 2; 1; 1 |]);
    (Heuristic.Max_path_from_root, [| 0; 1; 2; 0 |]);
    (Heuristic.Max_delay_from_root, [| 0; 2; 3; 0 |]);
    (Heuristic.Earliest_start_time, [| 0; 2; 3; 0 |]);
    (Heuristic.Latest_start_time, [| 0; 2; 3; 3 |]);
    (Heuristic.Slack, [| 0; 0; 0; 3 |]);
    (Heuristic.Num_children, [| 1; 1; 0; 0 |]);
    (Heuristic.Delays_to_children Heuristic.Sum, [| 2; 1; 0; 0 |]);
    (Heuristic.Delays_to_children Heuristic.Max, [| 2; 1; 0; 0 |]);
    (Heuristic.Num_single_parent_children, [| 1; 1; 0; 0 |]);
    (Heuristic.Sum_delays_to_single_parent_children, [| 2; 1; 0; 0 |]);
    (Heuristic.Num_uncovered_children, [| 0; 1; 0; 0 |]);
    (Heuristic.Num_parents, [| 0; 1; 1; 0 |]);
    (Heuristic.Delays_from_parents Heuristic.Sum, [| 0; 2; 1; 0 |]);
    (Heuristic.Delays_from_parents Heuristic.Max, [| 0; 2; 1; 0 |]);
    (Heuristic.Num_descendants, [| 2; 1; 0; 0 |]);
    (Heuristic.Sum_exec_of_descendants, [| 2; 1; 0; 0 |]);
    (* default live-out: every register escapes the block *)
    (Heuristic.Registers_born, [| 1; 1; 0; 1 |]);
    (Heuristic.Registers_killed, [| 0; 0; 0; 0 |]);
    (Heuristic.Liveness, [| 1; 1; 0; 1 |]);
    (Heuristic.Birthing_instruction, [| 0; 0; 0; 0 |]);
    (Heuristic.Original_order, [| 0; 1; 2; 3 |]) ]

let test_golden_fresh () =
  let dag = dag_of_asm asm in
  let annot = Static_pass.compute dag in
  let st = Dyn_state.create dag Dyn_state.Forward in
  List.iter
    (fun (h, expected) ->
      Array.iteri
        (fun node want ->
          check_int
            (Printf.sprintf "%s(%d)" (Heuristic.to_string h) node)
            want
            (Evaluate.value h ~annot ~st node))
        expected)
    golden_fresh

let test_golden_after_first_issue () =
  (* after issuing the load at cycle 0 with the clock at 1 *)
  let dag = dag_of_asm asm in
  let annot = Static_pass.compute dag in
  let st = Dyn_state.create dag Dyn_state.Forward in
  Dyn_state.schedule st 0 ~at:0;
  st.Dyn_state.time <- 1;
  check_int "EET of the consumer" 2
    (Evaluate.value Heuristic.Earliest_execution_time ~annot ~st 1);
  check_int "consumer interlocks with previous" 1
    (Evaluate.value Heuristic.Interlock_with_previous ~annot ~st 1);
  check_int "independent add does not" 0
    (Evaluate.value Heuristic.Interlock_with_previous ~annot ~st 3);
  (* ld is LSU, add is IU: classes differ *)
  check_int "alternate type rewards the add" 1
    (Evaluate.value Heuristic.Alternate_type ~annot ~st 1);
  check_bool "node 0 scheduled" true st.Dyn_state.scheduled.(0);
  check_int "unscheduled parents of consumer" 0
    st.Dyn_state.unscheduled_parents.(1)

let test_golden_figure1_annotations () =
  (* the Figure-1 DAG's full static annotation set, deep_fp *)
  let dag =
    Builder.build Builder.Table_forward figure1_opts (figure1_block ())
  in
  let a = Static_pass.compute dag in
  Alcotest.(check (array int)) "exec" [| 20; 4; 4 |] a.Annot.exec_time;
  Alcotest.(check (array int)) "est" [| 0; 1; 20 |] a.Annot.est;
  Alcotest.(check (array int)) "lst" [| 0; 16; 20 |] a.Annot.lst;
  Alcotest.(check (array int)) "slack" [| 0; 15; 0 |] a.Annot.slack;
  Alcotest.(check (array int)) "mptl" [| 2; 1; 0 |] a.Annot.max_path_to_leaf;
  Alcotest.(check (array int)) "mdtl" [| 24; 8; 4 |] a.Annot.max_delay_to_leaf;
  check_int "critical path" 24 a.Annot.critical_path_length;
  Alcotest.(check (array int)) "descendants" [| 2; 1; 0 |] a.Annot.num_descendants

let test_golden_dot () =
  (* the DOT export of the same DAG, critical-path chain highlighted —
     pinned byte-for-byte so label/arc formatting can't drift silently *)
  let dag = dag_of_asm asm in
  let annot = Static_pass.compute dag in
  let critical =
    List.filter
      (fun i -> annot.Annot.slack.(i) = 0)
      (List.init (Dag.length dag) Fun.id)
  in
  Alcotest.(check (list int)) "critical chain" [ 0; 1; 2 ] critical;
  check_string "dot"
    "digraph block0 {\n\
    \  node [shape=box, fontname=\"monospace\", fontsize=10];\n\
    \  rankdir=TB;\n\
    \  n0 [label=\"0: ld [%fp - 8], %o1\", style=filled, \
     fillcolor=lightyellow];\n\
    \  n1 [label=\"1: add %o1, 1, %o2\", style=filled, \
     fillcolor=lightyellow];\n\
    \  n2 [label=\"2: st %o2, [%fp - 16]\", style=filled, \
     fillcolor=lightyellow];\n\
    \  n3 [label=\"3: add %o3, 1, %o4\"];\n\
    \  n0 -> n1 [label=\"RAW 2\", color=black];\n\
    \  n1 -> n2 [label=\"RAW 1\", color=black];\n\
     }\n"
    (Dot.render ~name:"block0" ~highlight:critical dag)

let test_golden_timeline_roundtrip () =
  (* the explain --timeline export shape: one issue span per
     instruction, built from the pipeline simulation, through
     Trace.to_json and back via the total reader *)
  let dag = dag_of_asm asm in
  let s = Published.run_on_dag Published.warren dag in
  let sim = Schedule.simulate s in
  let model = Dag.model dag in
  let spans =
    List.map
      (fun node ->
        {
          Trace.name = String.trim (Insn.to_string (Dag.insn dag node));
          cat = "issue";
          ts_us = float_of_int sim.Pipeline.issue_cycle.(node);
          dur_us =
            float_of_int (max 1 (model.Latency.exec_time (Dag.insn dag node)));
          pid = 0;
          tid = 0;
          args = [ ("node", Json.Int node) ];
        })
      (Array.to_list s.Schedule.order)
  in
  let json = Trace.to_json ~pid_names:[ (0, "block 0") ] spans in
  match Trace.events_of_json json with
  | Ok spans' -> check_bool "timeline round trip" true (spans = spans')
  | Error e -> Alcotest.fail (Json.error_to_string e)

let suite =
  [ quick "all heuristics, fresh state" test_golden_fresh;
    quick "after first issue" test_golden_after_first_issue;
    quick "figure 1 annotations" test_golden_figure1_annotations;
    quick "DOT export" test_golden_dot;
    quick "timeline export round trip" test_golden_timeline_roundtrip ]
