#!/usr/bin/env bash
# Bench bit-rot smoke: run every bench experiment once, in quick mode.
#
# The bench harness regenerates every table/figure of the paper and the
# perf-report JSON files, but nothing in tier-1 executes it, so a
# refactor can silently break an experiment.  This runner sweeps the
# whole experiment roster with DAGSCHED_BENCH_RUNS=1 and a single
# domain/shard/worker so the sweep stays minutes-not-hours; any
# experiment that exits non-zero fails the suite.
#
# Usage: bench_smoke.sh path/to/bench/main.exe path/to/schedtool.exe
set -u

BENCH="${1:?usage: bench_smoke.sh BENCH_EXE SCHEDTOOL_EXE}"
SCHEDTOOL="${2:?usage: bench_smoke.sh BENCH_EXE SCHEDTOOL_EXE}"
# the runner cds into a scratch dir, so the paths must survive that
case "$BENCH" in /*) ;; *) BENCH="$PWD/$BENCH" ;; esac
case "$SCHEDTOOL" in /*) ;; *) SCHEDTOOL="$PWD/$SCHEDTOOL" ;; esac

export DAGSCHED_BENCH_RUNS=1
export DAGSCHED_BENCH_DOMAINS=1
export DAGSCHED_BENCH_SHARDS=1
export DAGSCHED_BENCH_WORKERS=1
# the fleet and serve experiments spawn worker/daemon processes
export DAGSCHED_SCHEDTOOL="$SCHEDTOOL"

# run inside a scratch dir so the BENCH_*.json artifacts land out of
# the source tree
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir" || exit 1

# the roster, straight from the harness usage error (kept authoritative
# so a new experiment is smoke-tested without touching this script)
experiments=$("$BENCH" __list 2>&1 | sed -n 's/.*available: //p' | tr -d ',')
if [ -z "$experiments" ]; then
  echo "FAIL: could not read the experiment roster from $BENCH" >&2
  exit 1
fi

fail=0
for exp in $experiments; do
  if out=$("$BENCH" "$exp" 2>&1); then
    echo "ok: $exp"
  else
    echo "FAIL: $exp"
    echo "$out" | tail -20
    fail=1
  fi
done

# the perf-report experiments must leave parseable JSON behind
for f in BENCH_parallel.json BENCH_shard.json BENCH_fleet.json \
         BENCH_obs.json BENCH_explain.json BENCH_pool.json; do
  if [ ! -s "$f" ]; then
    echo "FAIL: $f missing or empty"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "bench smoke: FAILED"
  exit 1
fi
echo "bench smoke: all experiments ran"
