(** Utility tests: PRNG determinism and distributions, bit sets, the
    table printer, the stats accumulator, the domain work pool, and the
    hand-rolled JSON writer/reader. *)

open Dagsched
open Helpers

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.int a 1_000_000 = Prng.int b 1_000_000 then incr same
  done;
  check_bool "streams differ" true (!same < 5)

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    check_bool "in range" true (x >= 0 && x < 10);
    let y = Prng.range rng 5 9 in
    check_bool "range inclusive" true (y >= 5 && y <= 9);
    let f = Prng.float rng in
    check_bool "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_weighted () =
  let rng = Prng.create 3 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Prng.weighted rng [ (1.0, "a"); (9.0, "b") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  let b = Option.value ~default:0 (Hashtbl.find_opt counts "b") in
  check_bool "b dominates" true (b > 6 * a)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 11 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_bitset_basics () =
  let b = Bitset.create () in
  check_bool "empty" true (Bitset.is_empty b);
  Bitset.set b 3;
  Bitset.set b 100;
  check_bool "mem 3" true (Bitset.mem b 3);
  check_bool "mem 100" true (Bitset.mem b 100);
  check_bool "not mem 4" false (Bitset.mem b 4);
  check_int "cardinal" 2 (Bitset.cardinal b);
  Bitset.clear b 3;
  check_bool "cleared" false (Bitset.mem b 3);
  check_int "cardinal after clear" 1 (Bitset.cardinal b)

let test_bitset_growth () =
  let b = Bitset.create () in
  Bitset.set b 10_000;
  check_bool "grew" true (Bitset.mem b 10_000);
  check_bool "low bits still clear" false (Bitset.mem b 0)

let test_bitset_union () =
  let a = Bitset.create () and b = Bitset.create () in
  Bitset.set a 1;
  Bitset.set b 2;
  Bitset.set b 300;
  Bitset.union_into ~into:a b;
  check_bool "1" true (Bitset.mem a 1);
  check_bool "2" true (Bitset.mem a 2);
  check_bool "300" true (Bitset.mem a 300);
  check_bool "b unchanged" false (Bitset.mem b 1)

let test_bitset_subset_equal () =
  let a = Bitset.create () and b = Bitset.create () in
  Bitset.set a 5;
  Bitset.set b 5;
  Bitset.set b 7;
  check_bool "subset" true (Bitset.subset a b);
  check_bool "not superset" false (Bitset.subset b a);
  check_bool "not equal" false (Bitset.equal a b);
  Bitset.set a 7;
  check_bool "equal now" true (Bitset.equal a b);
  (* equality across different capacities *)
  let c = Bitset.create () in
  Bitset.set c 5;
  Bitset.set c 7;
  Bitset.set c 5000;
  Bitset.clear c 5000;
  check_bool "equal across capacities" true (Bitset.equal a c)

let test_bitset_elements () =
  let b = Bitset.create () in
  List.iter (Bitset.set b) [ 9; 1; 64; 63 ];
  Alcotest.(check (list int)) "sorted elements" [ 1; 9; 63; 64 ] (Bitset.elements b)

(* A negative index used to hit [1 lsl (i mod word_size)] with a negative
   shift count and silently corrupt word 0; now every entry point raises. *)
let test_bitset_negative_raises () =
  let b = Bitset.create () in
  let raises name f =
    match f () with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
        check_bool (name ^ " names the operation") true (contains msg name)
  in
  raises "set" (fun () -> Bitset.set b (-1));
  raises "clear" (fun () -> Bitset.clear b (-1));
  raises "mem" (fun () -> ignore (Bitset.mem b (-1)));
  check_bool "word 0 untouched" true (Bitset.is_empty b);
  let m = Bitset.Matrix.create ~rows:2 ~cols:70 in
  raises "set" (fun () -> Bitset.Matrix.set m 0 (-1));
  raises "set" (fun () -> Bitset.Matrix.set m (-1) 0);
  raises "clear" (fun () -> Bitset.Matrix.clear m 1 (-1));
  raises "mem" (fun () -> ignore (Bitset.Matrix.mem m 0 (-1)));
  check_int "matrix untouched" 0 (Bitset.Matrix.row_cardinal m 0)

(* Word-boundary indices (63-bit words): bits 0, 62, 63 and the
   capacity-growth edge behave like any interior bit. *)
let test_bitset_word_boundaries () =
  let edges = [ 0; 1; 61; 62; 63; 64; 125; 126; 127 ] in
  List.iter
    (fun i ->
      let b = Bitset.create () in
      Bitset.set b i;
      check_bool "set is member" true (Bitset.mem b i);
      check_int "only that bit" 1 (Bitset.cardinal b);
      check_bool "neighbor clear" false (Bitset.mem b (i + 1));
      if i > 0 then check_bool "lower neighbor clear" false (Bitset.mem b (i - 1));
      Bitset.clear b i;
      check_bool "cleared" false (Bitset.mem b i);
      check_bool "empty again" true (Bitset.is_empty b))
    edges;
  (* clear/mem past the current capacity are total, not errors *)
  let b = Bitset.make 4 in
  Bitset.clear b 9999;
  check_bool "mem past capacity" false (Bitset.mem b 9999)

(* Random set/clear/mem sequence against a Hashtbl model, with indices
   concentrated on word boundaries and the growth edge. *)
let test_bitset_model_check () =
  let rng = Prng.create 2024 in
  let b = Bitset.create () in
  let model = Hashtbl.create 64 in
  for _ = 1 to 4000 do
    let i =
      match Prng.int rng 4 with
      | 0 -> Prng.int rng 4                 (* word 0 *)
      | 1 -> 61 + Prng.int rng 5            (* first word boundary *)
      | 2 -> 124 + Prng.int rng 5           (* second word boundary *)
      | _ -> Prng.int rng 400               (* anywhere, forcing growth *)
    in
    (match Prng.int rng 3 with
    | 0 -> Bitset.set b i; Hashtbl.replace model i ()
    | 1 -> Bitset.clear b i; Hashtbl.remove model i
    | _ -> check_bool "model agrees" (Hashtbl.mem model i) (Bitset.mem b i));
    check_int "cardinal agrees" (Hashtbl.length model) (Bitset.cardinal b)
  done

let test_matrix_edges () =
  let m = Bitset.Matrix.create ~rows:3 ~cols:64 in
  check_int "rows" 3 (Bitset.Matrix.rows m);
  check_int "cols" 64 (Bitset.Matrix.cols m);
  (* last valid column (straddles the 63-bit word boundary) *)
  Bitset.Matrix.set m 1 63;
  Bitset.Matrix.set m 1 62;
  Bitset.Matrix.set m 1 0;
  check_bool "bit 63" true (Bitset.Matrix.mem m 1 63);
  check_bool "bit 62" true (Bitset.Matrix.mem m 1 62);
  check_bool "bit 0" true (Bitset.Matrix.mem m 1 0);
  check_int "row cardinal" 3 (Bitset.Matrix.row_cardinal m 1);
  check_int "other rows untouched" 0 (Bitset.Matrix.row_cardinal m 0);
  (* columns at or past [cols]: set raises, clear is a no-op, mem is false *)
  (match Bitset.Matrix.set m 0 64 with
  | () -> Alcotest.fail "set past cols: expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  Bitset.Matrix.clear m 0 64;
  check_bool "mem past cols" false (Bitset.Matrix.mem m 0 64);
  (* rows out of range raise *)
  (match Bitset.Matrix.set m 3 0 with
  | () -> Alcotest.fail "set past rows: expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  (* union/clear_row stay within their row *)
  Bitset.Matrix.set m 0 5;
  Bitset.Matrix.union_rows m ~into:0 ~from:1;
  check_int "union merged" 4 (Bitset.Matrix.row_cardinal m 0);
  check_int "source intact" 3 (Bitset.Matrix.row_cardinal m 1);
  Bitset.Matrix.clear_row m 0;
  check_int "cleared row" 0 (Bitset.Matrix.row_cardinal m 0);
  check_int "neighbor row intact" 3 (Bitset.Matrix.row_cardinal m 1);
  (* round trip through the growable set *)
  let row = Bitset.Matrix.row_bitset m 1 in
  Alcotest.(check (list int)) "row elements" [ 0; 62; 63 ] (Bitset.elements row);
  Bitset.Matrix.blit_bitset_row m row 2;
  check_bool "row_equal after blit" true (Bitset.Matrix.row_equal m 1 m 2);
  (* degenerate shapes *)
  let z = Bitset.Matrix.create ~rows:0 ~cols:0 in
  check_int "zero rows" 0 (Bitset.Matrix.rows z);
  let e = Bitset.Matrix.create ~rows:2 ~cols:0 in
  Bitset.Matrix.clear_row e 0;
  check_int "zero-col cardinal" 0 (Bitset.Matrix.row_cardinal e 1)

let test_stats () =
  let s = Stats.of_ints [ 1; 2; 3; 4 ] in
  check_int "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s);
  (* zero samples: every summary is a defined, finite 0.0 — what the
     batch/shard reports rely on for empty corpora *)
  let empty = Stats.create () in
  check_int "empty count" 0 (Stats.count empty);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Stats.mean empty);
  Alcotest.(check (float 1e-9)) "empty max" 0.0 (Stats.max_value empty);
  Alcotest.(check (float 1e-9)) "empty min" 0.0 (Stats.min_value empty)

let test_stats_merge () =
  let whole = Stats.of_ints [ 1; 2; 3; 4; 10 ] in
  let merged = Stats.merge (Stats.of_ints [ 1; 2 ]) (Stats.of_ints [ 3; 4; 10 ]) in
  check_int "count" (Stats.count whole) (Stats.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean whole) (Stats.mean merged);
  Alcotest.(check (float 1e-9)) "max" (Stats.max_value whole) (Stats.max_value merged);
  Alcotest.(check (float 1e-9)) "min" (Stats.min_value whole) (Stats.min_value merged);
  Alcotest.(check (float 1e-9)) "total" (Stats.total whole) (Stats.total merged);
  (* the empty accumulator is the identity *)
  let with_empty = Stats.merge (Stats.create ()) whole in
  check_int "identity count" (Stats.count whole) (Stats.count with_empty);
  Alcotest.(check (float 1e-9)) "identity max"
    (Stats.max_value whole) (Stats.max_value with_empty);
  Alcotest.(check (float 1e-9)) "identity min"
    (Stats.min_value whole) (Stats.min_value with_empty)

(* ------------------------------------------------------------------ *)
(* the domain work pool *)

let test_pool_empty () =
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~domains:3 (fun x -> x) [])

let test_pool_single () =
  Alcotest.(check (list int)) "single item" [ 42 ]
    (Pool.map ~domains:3 (fun x -> x * 2) [ 21 ])

let test_pool_many_items_few_workers () =
  let n = 500 in
  let input = List.init n (fun i -> i) in
  let expected = List.map (fun i -> (i * i) + 1) input in
  Alcotest.(check (list int)) "items >> workers"
    expected
    (Pool.map ~domains:4 ~chunk:7 (fun i -> (i * i) + 1) input)

let test_pool_ordering_uneven_tasks () =
  (* earlier items busy-wait longer, so a racy pool would reorder *)
  let spin i =
    let k = ref 0 in
    for _ = 1 to (50 - i) * 2000 do incr k done;
    ignore !k;
    i
  in
  let input = List.init 50 (fun i -> i) in
  Alcotest.(check (list int)) "order preserved" input
    (Pool.map ~domains:4 spin input)

exception Boom of int

let test_pool_exception_propagates () =
  (* a raising task surfaces the exception instead of hanging a worker *)
  match
    Pool.map ~domains:3 (fun i -> if i = 13 then raise (Boom i) else i)
      (List.init 40 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 13 -> ()

let test_pool_usable_after_failed_wait () =
  let pool = Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      Pool.submit pool (fun () -> raise (Boom 1));
      (match Pool.wait pool with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom 1 -> ());
      (* the failure was cleared; the pool still runs tasks *)
      let hit = Atomic.make 0 in
      for _ = 1 to 20 do
        Pool.submit pool (fun () -> Atomic.incr hit)
      done;
      Pool.wait pool;
      check_int "tasks after failure" 20 (Atomic.get hit))

let test_pool_submit_after_shutdown () =
  let pool = Pool.create ~domains:2 () in
  Pool.shutdown pool;
  match Pool.submit pool (fun () -> ()) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_pool_map_on_reuse () =
  (* several maps over one pool: same results as fresh-pool maps, and the
     pool survives each round (what the shard fleet relies on) *)
  let pool = Pool.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      for round = 1 to 4 do
        let n = 30 * round in
        let input = List.init n (fun i -> i) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map (fun i -> i * round) input)
          (Pool.map_on pool ~chunk:3 (fun i -> i * round) input)
      done;
      Alcotest.(check (list int)) "empty input on live pool" []
        (Pool.map_on pool (fun x -> x) []))

let test_pool_map_on_usable_after_exception () =
  let pool = Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      (match Pool.map_on pool (fun i -> if i = 3 then raise (Boom i) else i)
               (List.init 8 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 3 -> ());
      (* the failure was cleared by [wait]; the next map still works *)
      Alcotest.(check (list int)) "map after failure" [ 0; 2; 4 ]
        (Pool.map_on pool (fun i -> 2 * i) [ 0; 1; 2 ]))

let test_pool_chunk_exception_ordering () =
  (* Regression (pool.mli "Exception ordering under ~chunk"): when f
     raises mid-chunk, the rest of that chunk is skipped and its result
     slots never written — the caller must see the task's own exception
     re-raised from [wait], never the internal assert on an unwritten
     slot.  Other chunks still drain before the re-raise. *)
  let n = 8 in
  let visited = Array.make n false in
  let f i =
    visited.(i) <- true;
    if i = 1 then raise (Boom i);
    i
  in
  (match Pool.map_array ~domains:1 ~chunk:4 f (Array.init n (fun i -> i)) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ()
  | exception Assert_failure _ ->
      Alcotest.fail "unwritten chunk slot was read before the re-raise");
  (* same chunk after the raising element: skipped *)
  check_bool "element before the raise ran" true visited.(0);
  check_bool "raising element ran" true visited.(1);
  check_bool "rest of the failing chunk skipped" false (visited.(2) || visited.(3));
  (* the other chunk drains (single worker, so it ran before the re-raise) *)
  check_bool "later chunk still drained" true
    (visited.(4) && visited.(5) && visited.(6) && visited.(7))

let test_pool_steal_exception_input_order () =
  (* Exception injection under stealing: two raising elements land in
     different chunks — with 4 domains and round-robin submission the
     later one is typically run by another domain (often via a steal)
     and raises first in wall-clock time, because the input-earlier
     raiser spins before raising.  [wait] must still propagate the
     input-order-first failure (lowest submission sequence number), not
     the first one to fire, and the pool must stay joinable and usable
     afterwards. *)
  for round = 0 to 9 do
    let early = 5 and late = 29 in
    let f i =
      if i = early then begin
        let k = ref 0 in
        for _ = 1 to 2_000_000 do incr k done;
        ignore !k;
        raise (Boom i)
      end;
      if i = late then raise (Boom i);
      i
    in
    let pool = Pool.create ~domains:4 () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        (match Pool.map_array_on pool ~chunk:2 f (Array.init 32 Fun.id) with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom i ->
            check_int
              (Printf.sprintf "round %d: first raise in input order" round)
              early i);
        (* the failure was cleared; workers survived the raising steal *)
        Alcotest.(check (list int))
          "pool usable after stolen-task failure" [ 0; 2; 4 ]
          (Pool.map_on pool (fun i -> 2 * i) [ 0; 1; 2 ]))
  done

(* ------------------------------------------------------------------ *)
(* hand-rolled JSON *)

let sample_json =
  Stats.Json.(
    Obj
      [ ("name", String "batch \"x\"\n");
        ("ok", Bool true);
        ("none", Null);
        ("n", Int (-42));
        ("xs", List [ Int 1; Float 0.5; String "s"; List []; Obj [] ]);
        ("wall", Float 0.30000000000000004) ])

let test_json_writer () =
  check_string "rendering"
    "{\"name\": \"batch \\\"x\\\"\\n\", \"ok\": true, \"none\": null, \
     \"n\": -42, \"xs\": [1, 0.5, \"s\", [], {}], \
     \"wall\": 0.30000000000000004}"
    (Stats.Json.to_string sample_json)

let test_json_round_trip () =
  match Stats.Json.of_string (Stats.Json.to_string sample_json) with
  | Ok v -> check_bool "round trip" true (v = sample_json)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_number_forms () =
  let parse s =
    match Stats.Json.of_string s with
    | Ok v -> v
    | Error msg -> Alcotest.failf "parse %S failed: %s" s msg
  in
  check_bool "int" true (parse "3" = Stats.Json.Int 3);
  check_bool "negative int" true (parse "-7" = Stats.Json.Int (-7));
  check_bool "float" true (parse "3.5" = Stats.Json.Float 3.5);
  check_bool "exponent" true (parse "1e3" = Stats.Json.Float 1000.0);
  check_bool "float stays float" true
    (parse (Stats.Json.to_string (Stats.Json.Float 3.0)) = Stats.Json.Float 3.0)

let test_json_non_finite_floats () =
  (* JSON has no nan/infinity: the writer must never emit the raw %g
     spellings ("nan", "inf", "nan.0", ...), which no parser — including
     ours — would read back.  Non-finite floats are encoded as null. *)
  List.iter
    (fun f ->
      check_string "encoded as null" "null" (Stats.Json.to_string (Stats.Json.Float f)))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  (* writer-to-reader round trip: null reads back as Null *)
  (match Stats.Json.of_string (Stats.Json.to_string (Stats.Json.Float Float.nan)) with
  | Ok Stats.Json.Null -> ()
  | Ok _ -> Alcotest.fail "nan did not round-trip to Null"
  | Error msg -> Alcotest.failf "nan round trip does not parse: %s" msg);
  (* non-finite values nested in containers stay valid JSON too *)
  let nested =
    Stats.Json.(Obj [ ("xs", List [ Float Float.infinity; Int 1 ]) ])
  in
  match Stats.Json.of_string (Stats.Json.to_string nested) with
  | Ok v ->
      check_bool "infinity nested round trip" true
        (v = Stats.Json.(Obj [ ("xs", List [ Null; Int 1 ]) ]))
  | Error msg -> Alcotest.failf "nested round trip does not parse: %s" msg

let test_json_negative_zero () =
  (* -0.0 is finite and must survive a round trip with its sign *)
  let text = Stats.Json.to_string (Stats.Json.Float (-0.0)) in
  check_string "rendering" "-0.0" text;
  match Stats.Json.of_string text with
  | Ok (Stats.Json.Float f) ->
      check_bool "sign preserved" true (1.0 /. f = Float.neg_infinity)
  | Ok _ -> Alcotest.fail "-0.0 did not parse as a float"
  | Error msg -> Alcotest.failf "-0.0 does not parse: %s" msg

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Stats.Json.of_string s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ "{"; "[1,"; "\"unterminated"; "truish"; ""; "1 2"; "{\"a\" 1}" ]

let test_json_member () =
  check_bool "member hit" true
    (Stats.Json.member "n" sample_json = Some (Stats.Json.Int (-42)));
  check_bool "member miss" true (Stats.Json.member "zzz" sample_json = None);
  check_bool "member of non-obj" true
    (Stats.Json.member "x" (Stats.Json.Int 1) = None)

let test_stats_to_json () =
  let s = Stats.of_ints [ 1; 2; 3 ] in
  let j = Stats.to_json s in
  check_bool "count" true (Stats.Json.member "count" j = Some (Stats.Json.Int 3));
  check_bool "mean" true (Stats.Json.member "mean" j = Some (Stats.Json.Float 2.0))

let test_table_render () =
  let t = Table.create ~title:"demo" [ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  check_bool "has title" true (String.length out > 0 && String.sub out 0 4 = "demo");
  check_bool "has rule" true (String.contains out '-');
  (* numeric right-alignment: " 1" under "n " *)
  let lines = String.split_on_char '\n' out in
  check_bool "enough lines" true (List.length lines >= 4)

let suite =
  [ quick "prng deterministic" test_prng_deterministic;
    quick "prng seeds differ" test_prng_seeds_differ;
    quick "prng bounds" test_prng_bounds;
    quick "prng weighted" test_prng_weighted;
    quick "prng shuffle permutes" test_prng_shuffle_permutes;
    quick "bitset basics" test_bitset_basics;
    quick "bitset growth" test_bitset_growth;
    quick "bitset union" test_bitset_union;
    quick "bitset subset/equal" test_bitset_subset_equal;
    quick "bitset elements" test_bitset_elements;
    quick "bitset negative raises" test_bitset_negative_raises;
    quick "bitset word boundaries" test_bitset_word_boundaries;
    quick "bitset model check" test_bitset_model_check;
    quick "matrix edges" test_matrix_edges;
    quick "stats" test_stats;
    quick "stats merge" test_stats_merge;
    quick "pool empty" test_pool_empty;
    quick "pool single" test_pool_single;
    quick "pool many items few workers" test_pool_many_items_few_workers;
    quick "pool ordering under uneven tasks" test_pool_ordering_uneven_tasks;
    quick "pool exception propagates" test_pool_exception_propagates;
    quick "pool usable after failed wait" test_pool_usable_after_failed_wait;
    quick "pool submit after shutdown" test_pool_submit_after_shutdown;
    quick "pool map_on reuses one pool" test_pool_map_on_reuse;
    quick "pool map_on usable after exception" test_pool_map_on_usable_after_exception;
    quick "pool chunk exception ordering" test_pool_chunk_exception_ordering;
    quick "pool steal exception input order"
      test_pool_steal_exception_input_order;
    quick "json writer" test_json_writer;
    quick "json round trip" test_json_round_trip;
    quick "json number forms" test_json_number_forms;
    quick "json non-finite floats" test_json_non_finite_floats;
    quick "json negative zero" test_json_negative_zero;
    quick "json parse errors" test_json_parse_errors;
    quick "json member" test_json_member;
    quick "stats to_json" test_stats_to_json;
    quick "table render" test_table_render ]
