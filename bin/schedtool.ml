(** schedtool — command-line driver for the dagsched library.

    {v
    schedtool gen -p linpack              # emit a Table-3 workload as assembly
    schedtool stats file.s                # Table-3 structural statistics
    schedtool build -a table-forward file.s    # DAG construction + stats
    schedtool schedule -A warren file.s   # run a published scheduler
    schedtool compare file.s              # all builders x all schedulers
    v} *)

open Dagsched

let read_input = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let load_blocks path =
  let text = read_input path in
  match Parser.parse_program_result text with
  | Ok insns -> Cfg_builder.partition insns
  | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 2

(* ------------------------------------------------------------------ *)
(* cmdliner converters *)

open Cmdliner

let profile_conv =
  let parse s =
    match Profiles.by_name s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown profile %S (available: %s)" s
               (String.concat ", "
                  (List.map (fun p -> p.Profiles.name) Profiles.all))))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt p.Profiles.name)

let builder_conv =
  let parse s =
    match Builder.of_string s with
    | Some a -> Ok a
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown builder %S (available: %s)" s
               (String.concat ", " (List.map Builder.to_string Builder.all))))
  in
  Arg.conv (parse, fun fmt a -> Format.pp_print_string fmt (Builder.to_string a))

let strategy_conv =
  let parse s =
    match Disambiguate.of_string s with
    | Some x -> Ok x
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown strategy %S (available: %s)" s
               (String.concat ", " (List.map Disambiguate.to_string Disambiguate.all))))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Disambiguate.to_string s))

let model_conv =
  let parse s =
    match Latency.by_name s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown model %S (available: %s)" s
               (String.concat ", "
                  (List.map (fun m -> m.Latency.name) Latency.all_models))))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt m.Latency.name)

let scheduler_conv =
  let parse s =
    match Published.by_short s with
    | Some x -> Ok x
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown scheduler %S (available: %s)" s
               (String.concat ", "
                  (List.map (fun x -> x.Published.short) Published.all))))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt s.Published.short)

let file_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Assembly input ('-' for stdin).")

let model_arg =
  Arg.(
    value
    & opt model_conv Latency.simple_risc
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Latency model.")

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Disambiguate.Base_offset
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:"Memory disambiguation strategy.")

let builder_arg =
  Arg.(
    value
    & opt builder_conv Builder.Table_forward
    & info [ "a"; "algorithm" ] ~docv:"ALG" ~doc:"DAG construction algorithm.")

let opts_of model strategy = { Opts.default with Opts.model; strategy }

(* ------------------------------------------------------------------ *)
(* observability: --trace / --metrics / --resource / --log /
   --log-level / --progress on batch, shard and fleet *)

let trace_conv =
  let parse s =
    if s = "" then Error (`Msg "trace path must not be empty") else Ok s
  in
  Arg.conv (parse, Format.pp_print_string)

let trace_arg =
  Arg.(
    value
    & opt (some trace_conv) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record every pipeline phase as spans and write a Chrome \
              trace-event JSON timeline to $(docv) (loadable in Perfetto \
              at ui.perfetto.dev or chrome://tracing), plus a per-phase \
              summary table on stderr.  Report outputs are byte-identical \
              with and without tracing.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect pipeline counters and histograms (arcs added, \
              transitive arcs pruned, table probes, ready-list lengths, \
              stall cycles, pool latencies) and print them on stderr \
              after the run, with p50/p95/p99 columns per histogram.")

let resource_arg =
  Arg.(
    value & flag
    & info [ "resource" ]
        ~doc:"Profile GC/heap resource usage per pipeline phase \
              (allocation words, collections, heap high-water), export \
              it as a $(b,resource) field in the report JSON, and — \
              with $(b,--trace) — emit heap/GC counter tracks into the \
              trace timeline.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Record heuristic decisiveness while scheduling: per rank, \
              how often each heuristic was consulted, how many candidates \
              it eliminated and how often it settled the choice, plus \
              forced decisions, program-order tie-breaks and \
              priority-weight overrules.  Printed per strategy on stderr \
              after the run and exported as an $(b,explain) field in the \
              report JSON.  Schedules are unchanged; without this flag \
              report bytes are untouched.")

let log_path_conv =
  let parse s =
    if s = "" then Error (`Msg "log path must not be empty") else Ok s
  in
  Arg.conv (parse, Format.pp_print_string)

let log_arg =
  Arg.(
    value
    & opt (some log_path_conv) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:"Append structured JSONL events (one object per line) to \
              $(docv): supervision decisions, worker heartbeats, \
              diagnostics.  The file is written through on every event \
              (O_APPEND, no buffering), so it survives crashes and kills; \
              a fleet's workers share the same stream.")

let log_level_conv =
  let parse s =
    match Log.level_of_string s with
    | Some l -> Ok l
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown log level %S (available: debug, info, warn, error)" s))
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Log.level_to_string l))

let log_level_arg =
  Arg.(
    value
    & opt (some log_level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Minimum event level to record: debug, info, warn or error \
              (default info when $(b,--log) is given).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Render live progress on stderr: blocks done/total, current \
              phase, resident-set size — and, for a fleet, per-worker \
              state with stall detection (a worker that stops \
              heartbeating is flagged before its timeout kill).")

(* --trace also turns the metrics registry on, so a traced fleet ships a
   uniform obs payload home from every worker; only --metrics prints the
   registry *)
let obs_enable ~trace ~metrics ?(resource = false) ?(explain = false) ?log
    ?log_level () =
  if trace <> None then Trace.enable ();
  if metrics || trace <> None then Metrics.enable ();
  if resource then Obs_resource.enable ();
  if explain then Explain.enable ();
  (match (log_level, log) with
  | None, None -> ()
  | lvl, _ -> Log.set_level (Some (Option.value lvl ~default:Log.Info)));
  match log with
  | None -> ()
  | Some path -> (
      match Log.set_sink ~append:false path with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "log error: %s\n" msg;
          exit 125)

let span_parse file f =
  Trace.with_span ~cat:"cli" ~args:[ ("file", Json.String file) ] "parse" f

let span_encode f = Trace.with_span ~cat:"cli" "json_encode" f

let pid_name pid =
  if pid = 0 then "orchestrator" else Printf.sprintf "worker %d" (pid - 1)

(* Attach the resource-profiling snapshot to a report object when
   profiling is on, with the same round-trip self-check discipline as
   every other writer; the identity otherwise, so report bytes are
   untouched when --resource is absent. *)
let with_resource json =
  if not (Obs_resource.is_enabled ()) then json
  else
    match json with
    | Json.Obj fields ->
        let rows = Obs_resource.snapshot () in
        let rj = Obs_resource.to_json rows in
        (match Obs_resource.of_json rj with
        | Ok rows' when Obs_resource.equal rows rows' -> ()
        | _ ->
            Printf.eprintf "internal error: resource JSON round trip mismatch\n";
            exit 3);
        Json.Obj (fields @ [ ("resource", rj) ])
    | other -> other

(* Same discipline for the decisiveness statistics: an "explain" field
   appended only when the registry is live, round-trip checked. *)
let with_explain json =
  if not (Explain.enabled ()) then json
  else
    match json with
    | Json.Obj fields ->
        let stats = Explain.snapshot () in
        let ej = Explain.to_json stats in
        (match Explain.of_json ej with
        | Ok stats' when Explain.equal stats stats' -> ()
        | _ ->
            Printf.eprintf "internal error: explain JSON round trip mismatch\n";
            exit 3);
        Json.Obj (fields @ [ ("explain", ej) ])
    | other -> other

let explain_tables () =
  List.iter
    (fun (st : Explain.strategy_stat) ->
      Printf.eprintf
        "decisiveness: %s\n  %d decisions: %d forced, %d program-order \
         tie-breaks, %d weight-overruled\n"
        st.Explain.signature st.Explain.decisions st.Explain.forced
        st.Explain.tie_breaks st.Explain.overruled;
      let t =
        Table.create ~title:"ranks"
          [ "rank"; "heuristic"; "consulted"; "decided"; "eliminated" ]
      in
      List.iter
        (fun (r : Explain.rank_stat) ->
          Table.add_row t
            [ string_of_int r.Explain.rank; r.Explain.heuristic;
              string_of_int r.Explain.consulted;
              string_of_int r.Explain.decided;
              string_of_int r.Explain.eliminated ])
        st.Explain.ranks;
      prerr_string (Table.render t);
      match Explain.never_consulted st with
      | [] -> ()
      | dead ->
          Printf.eprintf "  never consulted: %s\n" (String.concat ", " dead))
    (Explain.snapshot ())

(* After the run: write the Chrome trace (with the same round-trip
   self-check discipline as the report writers) and print the per-phase,
   metrics, resource and decisiveness summaries on stderr. *)
let obs_finish ~trace ~metrics ?(resource = false) ?(explain = false) () =
  (match trace with
  | None -> ()
  | Some path ->
      let spans = Trace.snapshot () in
      let counters = Trace.snapshot_counters () in
      let pids =
        List.sort_uniq compare
          (List.map (fun (s : Trace.span) -> s.Trace.pid) spans
          @ List.map (fun (c : Trace.counter) -> c.Trace.cpid) counters)
      in
      let json =
        Trace.to_json ~pid_names:(List.map (fun p -> (p, pid_name p)) pids)
          ~counters spans
      in
      let text = Stats.Json.to_string json ^ "\n" in
      (match Stats.Json.of_string text with
      | Ok j
        when (match (Trace.events_of_json j, Trace.counters_of_json j) with
             | Ok spans', Ok counters' ->
                 spans' = spans && counters' = counters
             | _ -> false) -> ()
      | Ok _ ->
          Printf.eprintf "internal error: trace JSON round trip mismatch\n";
          exit 3
      | Error msg ->
          Printf.eprintf "internal error: trace JSON does not parse: %s\n" msg;
          exit 3);
      (try Out_channel.with_open_text path (fun oc -> output_string oc text)
       with Sys_error msg ->
         Printf.eprintf "trace error: %s\n" msg;
         exit 125);
      let t =
        Table.create ~title:"phases"
          [ "phase"; "spans"; "total ms"; "max ms" ]
      in
      List.iter
        (fun (p : Trace.phase_stat) ->
          Table.add_row t
            [ p.Trace.phase; string_of_int p.Trace.spans;
              Printf.sprintf "%.3f" (p.Trace.total_us /. 1000.0);
              Printf.sprintf "%.3f" (p.Trace.max_us /. 1000.0) ])
        (Trace.summary spans);
      prerr_string (Table.render t));
  if metrics then begin
    let snap = Metrics.snapshot () in
    if snap.Metrics.counters <> [] then begin
      let ct = Table.create ~title:"counters" [ "counter"; "value" ] in
      List.iter
        (fun (name, v) -> Table.add_row ct [ name; string_of_int v ])
        snap.Metrics.counters;
      prerr_string (Table.render ct)
    end;
    if snap.Metrics.histograms <> [] then begin
      let ht =
        Table.create ~title:"histograms"
          [ "histogram"; "count"; "sum"; "mean"; "p50"; "p95"; "p99" ]
      in
      List.iter
        (fun (h : Metrics.hist_summary) ->
          Table.add_row ht
            [ h.Metrics.name; string_of_int h.Metrics.count;
              string_of_int h.Metrics.sum;
              Printf.sprintf "%.1f" h.Metrics.mean;
              string_of_int h.Metrics.p50; string_of_int h.Metrics.p95;
              string_of_int h.Metrics.p99 ])
        (Metrics.summary snap);
      prerr_string (Table.render ht)
    end
  end;
  if resource then begin
    let rows = Obs_resource.snapshot () in
    if rows <> [] then begin
      let rt =
        Table.create ~title:"resource"
          [ "phase"; "calls"; "minor Mw"; "promoted Mw"; "major Mw";
            "minor gc"; "major gc"; "top heap Mw" ]
      in
      List.iter
        (fun (r : Obs_resource.phase_stat) ->
          Table.add_row rt
            [ r.Obs_resource.phase;
              string_of_int r.Obs_resource.calls;
              Printf.sprintf "%.2f" (r.Obs_resource.minor_words /. 1e6);
              Printf.sprintf "%.2f" (r.Obs_resource.promoted_words /. 1e6);
              Printf.sprintf "%.2f" (r.Obs_resource.major_words /. 1e6);
              string_of_int r.Obs_resource.minor_collections;
              string_of_int r.Obs_resource.major_collections;
              Printf.sprintf "%.2f"
                (float_of_int r.Obs_resource.top_heap_words /. 1e6) ])
        rows;
      prerr_string (Table.render rt)
    end
  end;
  if explain then explain_tables ()

(* ------------------------------------------------------------------ *)
(* gen *)

let gen_cmd =
  let run profile =
    let blocks = Profiles.generate profile in
    List.iter
      (fun b ->
        Printf.printf "B%d:\n%s" b.Block.id
          (Parser.print_program (Block.to_list b)))
      blocks
  in
  let profile =
    Arg.(
      value
      & opt profile_conv Profiles.linpack
      & info [ "p"; "profile" ] ~docv:"PROFILE"
          ~doc:"Workload profile (a Table-3 benchmark name).")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a calibrated workload as assembly text.")
    Term.(const run $ profile)

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_cmd =
  let run file =
    let blocks = load_blocks file in
    let s = Summary.of_blocks blocks in
    Format.printf "%a@." Summary.pp s
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Table-3 style structural statistics for a program.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* build *)

let build_cmd =
  let run alg model strategy verbose file =
    let blocks = load_blocks file in
    let opts = opts_of model strategy in
    let dags = List.map (Builder.build alg opts) blocks in
    let s = Dag_stats.of_dags dags in
    Format.printf "%s: %a@." (Builder.to_string alg) Dag_stats.pp s;
    if verbose then
      List.iter (fun dag -> Format.printf "%a" Dag.pp dag) dags
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every arc.")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Construct dependence DAGs and report structure.")
    Term.(const run $ builder_arg $ model_arg $ strategy_arg $ verbose $ file_arg)

(* ------------------------------------------------------------------ *)
(* schedule *)

let schedule_cmd =
  let run spec model strategy quiet emit file =
    let blocks = load_blocks file in
    let opts = opts_of model strategy in
    let before = ref 0 and after = ref 0 in
    let schedules =
      List.map
        (fun block ->
          let s = Published.run ~opts spec block in
          assert (Verify.is_valid s);
          before := !before + Schedule.original_cycles s;
          after := !after + Schedule.cycles s;
          s)
        blocks
    in
    if emit then begin
      let insns, filled, padded = Emit.emit_program schedules in
      if not quiet then print_string (Parser.print_program insns);
      Printf.eprintf "delay slots: %d filled, %d padded with nop\n" filled
        padded
    end
    else if not quiet then
      List.iter (fun s -> print_endline (Schedule.to_string s)) schedules;
    Printf.eprintf "%s: %d cycles -> %d cycles (%d blocks)\n"
      spec.Published.name !before !after (List.length blocks)
  in
  let spec =
    Arg.(
      value
      & opt scheduler_conv Published.warren
      & info [ "A"; "scheduler" ] ~docv:"SCHED"
          ~doc:"Published scheduling algorithm (Table 2 name).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress scheduled code.")
  in
  let emit =
    Arg.(
      value & flag
      & info [ "e"; "emit" ]
          ~doc:"Emit for a delayed-branch machine: fill or NOP-pad delay slots.")
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Schedule a program with one of the six published algorithms.")
    Term.(const run $ spec $ model_arg $ strategy_arg $ quiet $ emit $ file_arg)

(* ------------------------------------------------------------------ *)
(* compare *)

let compare_cmd =
  let run model strategy file =
    let blocks = load_blocks file in
    let opts = opts_of model strategy in
    let t =
      Table.create ~title:"schedulers"
        [ "algorithm"; "cycles"; "stalls"; "vs original" ]
    in
    let original =
      List.fold_left
        (fun acc b -> acc + Pipeline.cycles model b.Block.insns)
        0 blocks
    in
    Table.add_row t [ "(original order)"; string_of_int original; "-"; "1.00" ];
    List.iter
      (fun spec ->
        let cycles, stalls =
          List.fold_left
            (fun (c, st) b ->
              let s = Published.run ~opts spec b in
              (c + Schedule.cycles s, st + Schedule.stalls s))
            (0, 0) blocks
        in
        Table.add_row t
          [ spec.Published.name; string_of_int cycles; string_of_int stalls;
            Printf.sprintf "%.2f" (float_of_int cycles /. float_of_int original) ])
      Published.all;
    Table.print t;
    let bt =
      Table.create ~title:"builders" [ "builder"; "arcs"; "transitive arcs" ]
    in
    List.iter
      (fun alg ->
        let dags = List.map (Builder.build alg opts) blocks in
        let arcs = List.fold_left (fun a d -> a + Dag.n_arcs d) 0 dags in
        let trans =
          List.fold_left (fun a d -> a + Closure.count_transitive_arcs d) 0 dags
        in
        Table.add_row bt
          [ Builder.to_string alg; string_of_int arcs; string_of_int trans ])
      Builder.all;
    Table.print bt
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare all builders and published schedulers on one program.")
    Term.(const run $ model_arg $ strategy_arg $ file_arg)

(* ------------------------------------------------------------------ *)
(* optimal *)

let optimal_cmd =
  let run model strategy budget file =
    let blocks = load_blocks file in
    let opts = opts_of model strategy in
    let t =
      Table.create ~title:""
        [ "block"; "insns"; "optimal"; "exhaustive"; "nodes explored";
          "best heuristic" ]
    in
    List.iter
      (fun block ->
        let dag = Builder.build Builder.Table_forward opts block in
        let r = Optimal.run ~budget dag in
        let best_heuristic =
          List.fold_left
            (fun acc spec ->
              let s = Published.run_on_dag spec dag in
              min acc (Optimal.evaluate dag s.Schedule.order))
            max_int Published.all
        in
        Table.add_row t
          [ string_of_int block.Block.id;
            string_of_int (Block.length block);
            string_of_int r.Optimal.cycles;
            string_of_bool r.Optimal.optimal;
            string_of_int r.Optimal.nodes_explored;
            string_of_int best_heuristic ])
      blocks;
    Table.print t
  in
  let budget =
    Arg.(
      value & opt int 300_000
      & info [ "b"; "budget" ] ~docv:"N" ~doc:"Search-node budget.")
  in
  Cmd.v
    (Cmd.info "optimal"
       ~doc:"Branch-and-bound optimal scheduling (small blocks).")
    Term.(const run $ model_arg $ strategy_arg $ budget $ file_arg)

(* ------------------------------------------------------------------ *)
(* chain: cross-block scheduling with inherited latencies *)

let chain_cmd =
  let run model strategy inherit_latencies file =
    let blocks = load_blocks file in
    let opts = opts_of model strategy in
    let config =
      {
        Engine.direction = Dyn_state.Forward;
        mode = Engine.Winnowing;
        keys =
          [ Engine.key Heuristic.Earliest_execution_time;
            Engine.key Heuristic.Max_delay_to_leaf ];
      }
    in
    let _, insns =
      Global.schedule_chain ~inherit_latencies ~config ~opts blocks
    in
    print_string (Parser.print_program (Array.to_list insns));
    Printf.eprintf "chain: %d blocks, %d cycles (%s latencies)\n"
      (List.length blocks)
      (Global.chain_cycles model insns)
      (if inherit_latencies then "inherited" else "local")
  in
  let inherit_flag =
    Arg.(
      value & flag
      & info [ "g"; "global" ]
          ~doc:"Seed each block with the previous block's residual latencies.")
  in
  Cmd.v
    (Cmd.info "chain" ~doc:"Schedule a block sequence, optionally with inherited latencies.")
    Term.(const run $ model_arg $ strategy_arg $ inherit_flag $ file_arg)

(* ------------------------------------------------------------------ *)
(* batch: the parallel batch-scheduling driver *)

let batch_cmd =
  let run alg model strategy jobs chunk json_path quiet trace metrics resource
      explain log log_level progress file =
    obs_enable ~trace ~metrics ~resource ~explain ?log ?log_level ();
    if progress then Log.set_heartbeat ~echo:true ~interval_s:0.5 ();
    let blocks = span_parse file (fun () -> load_blocks file) in
    let config =
      { Batch.section6 with
        Batch.algorithm = alg;
        opts = opts_of model strategy }
    in
    let domains = if jobs <= 0 then Pool.recommended () else jobs in
    let chunk = if chunk <= 0 then Pool.default_chunk else chunk in
    let results, report = Batch.run_with_report ~domains ~chunk config blocks in
    if not quiet then
      List.iter
        (fun (r : Batch.result) ->
          Printf.printf "B%d: %d insns, %d arcs, %d -> %d cycles\n"
            r.Batch.block_id r.Batch.insns r.Batch.dag_arcs
            r.Batch.original_cycles r.Batch.cycles)
        results;
    (match json_path with
    | None -> ()
    | Some path ->
        let text =
          span_encode (fun () ->
              Stats.Json.to_string
                (with_explain (with_resource (Batch.report_to_json report)))
              ^ "\n")
        in
        (* the report must round-trip through the reader before we ship
           it; compare with the NaN-tolerant field-wise equality — under
           structural [=] a valid report with any NaN field would fail
           its own self-check *)
        (match Stats.Json.of_string text with
        | Ok json
          when (match Batch.report_of_json json with
               | Ok report' -> Batch.report_equal report report'
               | Error _ -> false) -> ()
        | Ok _ ->
            Printf.eprintf "internal error: report JSON round trip mismatch\n";
            exit 3
        | Error msg ->
            Printf.eprintf "internal error: report JSON does not parse: %s\n" msg;
            exit 3);
        if path = "-" then print_string text
        else Out_channel.with_open_text path (fun oc -> output_string oc text));
    if progress then
      Log.heartbeat ~force:true ~phase:"done" ~done_:report.Batch.blocks
        ~total:report.Batch.blocks ();
    Printf.eprintf
      "batch: %d blocks, %d domains, %d -> %d cycles, %.1f ms wall\n"
      report.Batch.blocks report.Batch.domains report.Batch.original_cycles
      report.Batch.scheduled_cycles (1000.0 *. report.Batch.wall_s);
    obs_finish ~trace ~metrics ~resource ~explain ()
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (0 or absent: one per recommended core).")
  in
  let chunk =
    Arg.(
      value & opt int 0
      & info [ "chunk" ] ~docv:"C"
          ~doc:"Blocks per work-stealing pool task (0 or absent: the \
                built-in default, 64).")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the aggregate report as JSON ('-' for stdout).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-block lines.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run the full pipeline over every block in parallel across a \
          work-stealing domain pool (deterministic: output is independent \
          of $(b,--jobs) and $(b,--chunk)).")
    Term.(
      const run $ builder_arg $ model_arg $ strategy_arg $ jobs $ chunk
      $ json_path $ quiet $ trace_arg $ metrics_arg $ resource_arg
      $ explain_arg $ log_arg $ log_level_arg $ progress_arg $ file_arg)

(* ------------------------------------------------------------------ *)
(* shard: a whole corpus across a fleet of batch drivers *)

let policy_conv =
  let parse s =
    match Shard.policy_of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown policy %S (available: %s)" s
               (String.concat ", "
                  (List.map Shard.policy_to_string Shard.all_policies))))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Shard.policy_to_string p))

let shard_cmd =
  let run alg model strategy jobs chunk shards policy json_path quiet trace
      metrics resource explain log log_level progress files =
    obs_enable ~trace ~metrics ~resource ~explain ?log ?log_level ();
    if progress then Log.set_heartbeat ~echo:true ~interval_s:0.5 ();
    let files = if files = [] then [ "-" ] else files in
    let corpus =
      List.map
        (fun path -> (path, span_parse path (fun () -> load_blocks path)))
        files
    in
    let config =
      { Batch.section6 with
        Batch.algorithm = alg;
        opts = opts_of model strategy }
    in
    let domains = if jobs <= 0 then Pool.recommended () else jobs in
    let chunk = if chunk <= 0 then Pool.default_chunk else chunk in
    let shards = if shards <= 0 then List.length corpus else shards in
    let _, merged = Shard.run ~domains ~chunk ~policy ~shards config corpus in
    if not quiet then
      List.iteri
        (fun i (r : Batch.report) ->
          (* timing-free so stdout is byte-identical for any --jobs *)
          Printf.printf "shard %d: %d blocks, %d insns, %d arcs, %d -> %d cycles\n"
            i r.Batch.blocks r.Batch.insns r.Batch.arcs
            r.Batch.original_cycles r.Batch.scheduled_cycles)
        merged.Shard.per_shard;
    (match json_path with
    | None -> ()
    | Some path ->
        let text =
          span_encode (fun () ->
              Stats.Json.to_string
                (with_explain (with_resource (Shard.merged_to_json merged)))
              ^ "\n")
        in
        (* same self-check as batch: the merged report must round-trip
           through the reader (NaN-tolerantly) before we ship it *)
        (match Stats.Json.of_string text with
        | Ok json
          when (match Shard.merged_of_json json with
               | Ok merged' -> Shard.merged_equal merged merged'
               | Error _ -> false) -> ()
        | Ok _ ->
            Printf.eprintf "internal error: shard JSON round trip mismatch\n";
            exit 3
        | Error msg ->
            Printf.eprintf "internal error: shard JSON does not parse: %s\n" msg;
            exit 3);
        if path = "-" then print_string text
        else Out_channel.with_open_text path (fun oc -> output_string oc text));
    let agg = merged.Shard.aggregate in
    Printf.eprintf
      "shard: %d files, %d blocks, %d shards (%s), %d domains, %d -> %d \
       cycles, %.1f ms wall\n"
      (List.length corpus) agg.Batch.blocks merged.Shard.shards
      (Shard.policy_to_string merged.Shard.policy)
      agg.Batch.domains agg.Batch.original_cycles agg.Batch.scheduled_cycles
      (1000.0 *. agg.Batch.wall_s);
    if progress then
      Log.heartbeat ~force:true ~phase:"done" ~done_:agg.Batch.blocks
        ~total:agg.Batch.blocks ();
    obs_finish ~trace ~metrics ~resource ~explain ()
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains shared by the fleet (0 or absent: one per \
                recommended core).")
  in
  let chunk =
    Arg.(
      value & opt int 0
      & info [ "chunk" ] ~docv:"C"
          ~doc:"Blocks per work-stealing pool task (0 or absent: the \
                built-in default, 64).")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "k"; "shards" ] ~docv:"K"
          ~doc:"Shard count (0 or absent: one per input file).")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Shard.Balanced
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"Partition policy: balanced (greedy on block length) or \
                round-robin.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the merged report (aggregate + per-shard) as JSON \
                ('-' for stdout).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-shard lines.")
  in
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"Assembly inputs forming the corpus ('-' for stdin; \
                default stdin).")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Partition a multi-file corpus into shards and run one batch \
          pipeline per shard over a shared work-stealing domain pool \
          (aggregate statistics are independent of $(b,--shards), \
          $(b,--policy), $(b,--jobs) and $(b,--chunk)).")
    Term.(
      const run $ builder_arg $ model_arg $ strategy_arg $ jobs $ chunk
      $ shards $ policy $ json_path $ quiet $ trace_arg $ metrics_arg
      $ resource_arg $ explain_arg $ log_arg $ log_level_arg $ progress_arg
      $ files)

(* ------------------------------------------------------------------ *)
(* worker: one fleet shard, driven by a manifest file *)

let worker_cmd =
  let run manifest_path =
    (* pick up the orchestrator's DAGSCHED_OBS / DAGSCHED_LOG /
       DAGSCHED_HEARTBEAT_S first, so even a sabotaged worker leaves its
       last words in the shared log stream *)
    Obs.init_from_env ();
    (match Sys.getenv_opt "DAGSCHED_WORKER_SHARD" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some shard -> Log.set_context [ ("shard", Json.Int shard) ]
        | None -> ())
    | None -> ());
    (* the crash-injection knob fires before any work so a sabotaged
       worker looks like a worker that died early *)
    Fleet.maybe_sabotage ();
    Log.heartbeat ~force:true ~phase:"parse" ~done_:0 ~total:0 ();
    let text =
      try read_input manifest_path
      with Sys_error msg ->
        Printf.eprintf "manifest error: %s\n" msg;
        exit 2
    in
    let manifest =
      match Stats.Json.of_string text with
      | Error msg ->
          Printf.eprintf "manifest error: %s\n" msg;
          exit 2
      | Ok json -> (
          match Fleet.manifest_of_json json with
          | Error e ->
              Printf.eprintf "manifest error: %s\n"
                (Stats.Json.error_to_string e);
              exit 2
          | Ok m -> m)
    in
    let config =
      match Fleet.config_of_manifest manifest with
      | Ok c -> c
      | Error msg ->
          Printf.eprintf "manifest error: %s\n" msg;
          exit 2
    in
    let blocks =
      try
        Trace.with_span ~cat:"cli"
          ~args:
            [ ( "files",
                Json.List
                  (List.map (fun f -> Json.String f) manifest.Fleet.files) ) ]
          "parse"
          (fun () -> List.concat_map load_blocks manifest.Fleet.files)
      with Sys_error msg ->
        (* an unreadable corpus file is this worker's failure, reported
           cleanly so the orchestrator degrades instead of seeing a crash *)
        Printf.eprintf "input error: %s\n" msg;
        exit 2
    in
    let _, report =
      Batch.run_with_report ~domains:manifest.Fleet.domains config blocks
    in
    Log.heartbeat ~force:true ~phase:"done" ~done_:report.Batch.blocks
      ~total:report.Batch.blocks ();
    let json = span_encode (fun () -> Batch.report_to_json report) in
    (* ship the recorded spans/counters/metrics/resource rows home
       inside the report: the orchestrator re-homes the trace events to
       this shard's fleet pid and absorbs the rest (Fleet.parse_output);
       readers that don't know the field ignore it *)
    let json =
      if
        not
          (Trace.enabled () || Metrics.is_enabled ()
          || Obs_resource.is_enabled () || Explain.enabled ())
      then json
      else
        match json with
        | Json.Obj fields ->
            let obs_fields =
              [ ( "trace",
                  Trace.to_json ~counters:(Trace.snapshot_counters ())
                    (Trace.snapshot ()) );
                ("metrics", Metrics.snapshot_to_json (Metrics.snapshot ())) ]
              @ (if Obs_resource.is_enabled () then
                   [ ( "resource",
                       Obs_resource.to_json (Obs_resource.snapshot ()) ) ]
                 else [])
              @
              if Explain.enabled () then
                [ ("explain", Explain.to_json (Explain.snapshot ())) ]
              else []
            in
            Json.Obj (fields @ [ ("obs", Json.Obj obs_fields) ])
        | other -> other
    in
    print_string (Stats.Json.to_string json);
    print_newline ()
  in
  let manifest_arg =
    Arg.(
      value & pos 0 string "-"
      & info [] ~docv:"MANIFEST"
          ~doc:"Shard manifest JSON ('-' for stdin): files + pipeline \
                options, as written by $(b,schedtool fleet).")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run one fleet shard: read a manifest, run the batch pipeline over \
          its files, print the aggregate report as JSON on stdout.  Spawned \
          by $(b,schedtool fleet); usable standalone for debugging.")
    Term.(const run $ manifest_arg)

(* ------------------------------------------------------------------ *)
(* fleet: shards as separate OS processes with supervision *)

let timeout_conv =
  let parse s =
    match float_of_string_opt s with
    | Some t when Float.is_finite t && t > 0.0 -> Ok t
    | _ -> Error (`Msg (Printf.sprintf "timeout must be a positive number of seconds, got %S" s))
  in
  Arg.conv (parse, fun fmt t -> Format.fprintf fmt "%g" t)

let retries_conv =
  let parse s =
    match int_of_string_opt s with
    | Some r when r >= 0 -> Ok r
    | _ -> Error (`Msg (Printf.sprintf "retries must be a non-negative integer, got %S" s))
  in
  Arg.conv (parse, fun fmt r -> Format.pp_print_int fmt r)

let fleet_cmd =
  let run alg model strategy jobs workers timeout retries backoff policy
      json_path quiet trace metrics resource explain log log_level progress
      files =
    (* enabling before Fleet.run makes the orchestrator export
       DAGSCHED_OBS (and the log stream variables) to its workers *)
    obs_enable ~trace ~metrics ~resource ~explain ?log ?log_level ();
    let files = if files = [] then [ "-" ] else files in
    let domains = if jobs <= 0 then Pool.recommended () else jobs in
    let workers = if workers <= 0 then List.length files else workers in
    let manifests =
      Fleet.plan ~policy ~workers ~algorithm:alg ~strategy
        ~model:model.Latency.name ~domains files
    in
    let on_progress =
      if not progress then None
      else
        Some
          (fun ps ->
            List.iter
              (fun (p : Fleet.progress) ->
                Printf.eprintf
                  "progress: worker %d %s, %d/%d blocks, %s, rss %d MB%s\n%!"
                  p.Fleet.shard p.Fleet.state p.Fleet.done_blocks
                  p.Fleet.total_blocks
                  (if p.Fleet.phase = "" then "-" else p.Fleet.phase)
                  (p.Fleet.rss_kb / 1024)
                  (if p.Fleet.stalled then
                     Printf.sprintf " STALLED (no heartbeat for %.1f s)"
                       p.Fleet.beat_age_s
                   else ""))
              ps)
    in
    let options =
      { Fleet.default_options with
        Fleet.timeout_s = timeout; retries; backoff_s = backoff; on_progress }
    in
    let t =
      Fleet.run ~options
        ~worker:[| Sys.executable_name; "worker" |]
        ~corpus:files manifests
    in
    if not quiet then
      List.iter
        (fun (l : Fleet.worker_log) ->
          Printf.eprintf "worker %d: %s, %d attempt%s, %.1f ms%s\n"
            l.Fleet.shard
            (match l.Fleet.report with Some _ -> "ok" | None -> "FAILED")
            l.Fleet.attempts
            (if l.Fleet.attempts = 1 then "" else "s")
            (1000.0 *. l.Fleet.wall_s)
            (match l.Fleet.failures with
            | [] -> ""
            | fs ->
                " ("
                ^ String.concat "; " (List.map Fleet.failure_to_string fs)
                ^ ")"))
        t.Fleet.logs;
    (match json_path with
    | None -> ()
    | Some path ->
        let text =
          span_encode (fun () ->
              Stats.Json.to_string
                (with_explain (with_resource (Fleet.to_json t)))
              ^ "\n")
        in
        (* same self-check as batch/shard: the full report must
           round-trip through the reader before we ship it *)
        (match Stats.Json.of_string text with
        | Ok json
          when (match Fleet.of_json json with
               | Ok t' -> Fleet.equal t t'
               | Error _ -> false) -> ()
        | Ok _ ->
            Printf.eprintf "internal error: fleet JSON round trip mismatch\n";
            exit 3
        | Error msg ->
            Printf.eprintf "internal error: fleet JSON does not parse: %s\n" msg;
            exit 3);
        if path = "-" then print_string text
        else Out_channel.with_open_text path (fun oc -> output_string oc text));
    (* stdout: the timing-free summary — byte-stable across --workers /
       --retries on a fault-free corpus (the full timed report goes to
       --json) *)
    if json_path <> Some "-" then
      print_string
        (span_encode (fun () ->
             Stats.Json.to_string (Fleet.summary_to_json t) ^ "\n"));
    let agg = t.Fleet.aggregate in
    Printf.eprintf
      "fleet: %d files, %d workers, %d blocks, %d -> %d cycles, %.1f ms wall%s\n"
      (List.length files) t.Fleet.workers agg.Batch.blocks
      agg.Batch.original_cycles agg.Batch.scheduled_cycles
      (1000.0 *. agg.Batch.wall_s)
      (match Fleet.failed_shards t with
      | [] -> ""
      | fs ->
          Printf.sprintf ", %d shard%s FAILED" (List.length fs)
            (if List.length fs = 1 then "" else "s"));
    obs_finish ~trace ~metrics ~resource ~explain ();
    if Fleet.failed_shards t <> [] then exit 4
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains per worker process (default 1: fleet \
                parallelism comes from processes).")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "w"; "workers" ] ~docv:"K"
          ~doc:"Worker process count (0 or absent: one per input file).")
  in
  let timeout =
    Arg.(
      value
      & opt timeout_conv Fleet.default_options.Fleet.timeout_s
      & info [ "timeout" ] ~docv:"S"
          ~doc:"Per-attempt wall-clock timeout in seconds (positive; a \
                worker past it is killed and the attempt counts as failed).")
  in
  let retries =
    Arg.(
      value
      & opt retries_conv Fleet.default_options.Fleet.retries
      & info [ "retries" ] ~docv:"R"
          ~doc:"Extra attempts per shard after the first fails \
                (non-negative; exponential backoff between attempts).")
  in
  let backoff =
    Arg.(
      value
      & opt timeout_conv Fleet.default_options.Fleet.backoff_s
      & info [ "backoff" ] ~docv:"S"
          ~doc:"Initial retry backoff in seconds (doubles per attempt).")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Shard.Balanced
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"File partition policy: balanced (greedy on file size) or \
                round-robin.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full fleet report (aggregate + per-shard + \
                supervision log) as JSON ('-' for stdout, replacing the \
                summary).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-worker lines.")
  in
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"Assembly inputs forming the corpus (must be real files — \
                workers re-read them).")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Partition a multi-file corpus across worker OS processes \
          ($(b,schedtool worker)) with per-worker timeouts, retries with \
          exponential backoff, and graceful degradation (a permanently \
          failed shard is reported, not fatal to the rest; exit code 4).  \
          Aggregate statistics match $(b,schedtool shard) for any \
          $(b,--workers) and $(b,--retries).")
    Term.(
      const run $ builder_arg $ model_arg $ strategy_arg $ jobs $ workers
      $ timeout $ retries $ backoff $ policy $ json_path $ quiet $ trace_arg
      $ metrics_arg $ resource_arg $ explain_arg $ log_arg $ log_level_arg
      $ progress_arg $ files)

(* ------------------------------------------------------------------ *)
(* serve: the scheduling daemon, and its client *)

let socket_conv =
  let parse s =
    if s = "" then Error (`Msg "socket path must not be empty") else Ok s
  in
  Arg.conv (parse, Format.pp_print_string)

let socket_arg =
  Arg.(
    required
    & opt (some socket_conv) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let run socket jobs chunk cache_entries cache_bytes max_frame timeout
      backlog access_log no_service_obs trace metrics resource log log_level
      progress =
    obs_enable ~trace ~metrics ~resource ?log ?log_level ();
    if progress then Log.set_heartbeat ~echo:true ~interval_s:0.5 ();
    let d = Serve.default_options in
    let options =
      { Serve.domains = (if jobs <= 0 then 1 else jobs);
        chunk;
        max_entries = (if cache_entries <= 0 then d.Serve.max_entries else cache_entries);
        max_bytes = (if cache_bytes <= 0 then d.Serve.max_bytes else cache_bytes);
        max_frame = (if max_frame <= 0 then d.Serve.max_frame else max_frame);
        read_timeout_s = (if timeout <= 0.0 then d.Serve.read_timeout_s else timeout);
        backlog = (if backlog <= 0 then d.Serve.backlog else backlog);
        service_obs = not no_service_obs;
        access_log }
    in
    let code = Serve.run ~options ~socket () in
    obs_finish ~trace ~metrics ~resource ();
    exit code
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains in the resident pool (default 1; part of \
                the report, so also part of the response bytes).")
  in
  let chunk =
    Arg.(
      value & opt int 0
      & info [ "chunk" ] ~docv:"C"
          ~doc:"Blocks per pool task (0 or absent: the built-in default).")
  in
  let cache_entries =
    Arg.(
      value & opt int 0
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Result-cache entry bound (0 or absent: 4096).")
  in
  let cache_bytes =
    Arg.(
      value & opt int 0
      & info [ "cache-bytes" ] ~docv:"B"
          ~doc:"Result-cache byte bound (0 or absent: 256 MiB).")
  in
  let max_frame =
    Arg.(
      value & opt int 0
      & info [ "max-frame" ] ~docv:"B"
          ~doc:"Largest accepted request frame in bytes (0 or absent: 16 \
                MiB); an oversized frame is answered with a typed error.")
  in
  let timeout =
    Arg.(
      value & opt float 0.0
      & info [ "timeout" ] ~docv:"S"
          ~doc:"Per-connection receive timeout in seconds (0 or absent: 10).")
  in
  let backlog =
    Arg.(
      value & opt int 0
      & info [ "backlog" ] ~docv:"N"
          ~doc:"listen(2) backlog — how many clients may queue (0 or \
                absent: 128).")
  in
  let access_log =
    (* socket_conv is just the nonempty-path check; an empty path is a
       flag error (124), an unopenable one is I/O (125, from run) *)
    Arg.(
      value
      & opt (some socket_conv) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:"Write one JSONL access-log line per request (id, op, \
                cache hit/miss, bytes in/out, duration, outcome); the \
                file is truncated at daemon start.")
  in
  let no_service_obs =
    Arg.(
      value & flag
      & info [ "no-service-obs" ]
          ~doc:"Disable windowed request metrics (the $(b,metrics) op \
                then answers empty windows).  Response bytes are \
                identical either way; this exists as the overhead \
                baseline for $(b,bench serve).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduling daemon: accept length-prefixed JSON schedule \
          requests on a Unix socket, answer from a content-addressed LRU \
          result cache or by running the batch pipeline on a resident \
          domain pool.  One request per connection, serviced sequentially; \
          a warm response is byte-identical to the cold response that \
          populated it.  SIGINT drains (in-flight request finishes) and \
          exits 130.")
    Term.(
      const run $ socket_arg $ jobs $ chunk $ cache_entries $ cache_bytes
      $ max_frame $ timeout $ backlog $ access_log $ no_service_obs
      $ trace_arg $ metrics_arg $ resource_arg $ log_arg $ log_level_arg
      $ progress_arg)

(* one metrics-op exchange, decoded: shared by `client --metrics-text`
   and `top`.  Exit taxonomy: 125 unreachable, 1 typed error answer,
   2 undecodable response. *)
let fetch_metrics ~who ~socket =
  let payload = Json.to_string (Serve.request_to_json Serve.Metrics) in
  match Serve.request_once ~socket payload with
  | Error msg ->
      Printf.eprintf "%s error: %s\n" who msg;
      exit 125
  | Ok response -> (
      match Json.of_string response with
      | Ok json when Json.member "status" json = Some (Json.String "error") ->
          print_endline response;
          exit 1
      | Ok json -> (
          match Serve.metrics_of_json json with
          | Ok m -> m
          | Error e ->
              Printf.eprintf "%s error: bad metrics response: %s\n" who
                (Json.error_to_string e);
              exit 2)
      | Error msg ->
          Printf.eprintf "%s error: unparseable response: %s\n" who msg;
          exit 2)

let client_cmd =
  let run socket ping stats metrics metrics_text alg model strategy file =
    if metrics_text then
      print_string
        (Serve.prometheus_of_metrics (fetch_metrics ~who:"client" ~socket))
    else
      let request =
        if ping then Serve.Ping
        else if stats then Serve.Stats
        else if metrics then Serve.Metrics
        else
          Serve.Schedule
            { text = read_input file; builder = alg; strategy; model }
      in
      let payload = Json.to_string (Serve.request_to_json request) in
      match Serve.request_once ~socket payload with
      | Error msg ->
          Printf.eprintf "client error: %s\n" msg;
          exit 125
      | Ok response -> (
          print_endline response;
          (* a typed error answer is a request failure: exit 1 so scripts
             can tell "scheduled" from "daemon said no" *)
          match Json.of_string response with
          | Ok json
            when Json.member "status" json = Some (Json.String "error") ->
              exit 1
          | _ -> ())
  in
  let ping =
    Arg.(
      value & flag
      & info [ "ping" ] ~doc:"Send a liveness ping instead of a schedule \
                              request.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Ask the daemon for its request and cache counters \
                (hits, misses, evictions, bytes) instead of scheduling.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Ask the daemon for its full telemetry snapshot (uptime, \
                rss, cache gauges, registry, windowed latency stats) as \
                raw JSON.")
  in
  let metrics_text =
    Arg.(
      value & flag
      & info [ "metrics-text" ]
          ~doc:"Like $(b,--metrics), but render Prometheus/OpenMetrics \
                text exposition instead of JSON.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running $(b,schedtool serve) daemon and \
          print the JSON response: a schedule request built from an \
          assembly file (default), $(b,--ping), $(b,--stats), \
          $(b,--metrics), or $(b,--metrics-text) (Prometheus text).  \
          Exits 125 when the daemon is unreachable, 1 when it answers a \
          typed error.")
    Term.(
      const run $ socket_arg $ ping $ stats $ metrics $ metrics_text
      $ builder_arg $ model_arg $ strategy_arg $ file_arg)

(* ------------------------------------------------------------------ *)
(* top: live terminal dashboard over the metrics op *)

let top_cmd =
  let render m =
    let lookups = m.Serve.cache_hits + m.Serve.cache_misses in
    let hit_rate =
      if lookups = 0 then 0.0
      else 100.0 *. float_of_int m.Serve.cache_hits /. float_of_int lookups
    in
    Printf.printf "uptime %.1f s   rss %.1f MB   requests %d\n"
      m.Serve.uptime_s
      (float_of_int m.Serve.rss_kb /. 1024.0)
      m.Serve.requests;
    Printf.printf
      "cache: %d/%d entries   %.2f/%.2f MB   hit rate %.1f%%   evictions \
       %d   rejects %d\n"
      m.Serve.cache_entries m.Serve.cache_max_entries
      (float_of_int m.Serve.cache_bytes /. (1024.0 *. 1024.0))
      (float_of_int m.Serve.cache_max_bytes /. (1024.0 *. 1024.0))
      hit_rate m.Serve.cache_evictions m.Serve.cache_rejects;
    let t =
      Table.create ~title:"windows"
        [ "window"; "count"; "req/s"; "errors"; "mean us"; "p50 us";
          "p95 us"; "p99 us" ]
    in
    List.iter
      (fun (w : Window.stats) ->
        Table.add_row t
          [ Printf.sprintf "%gs" w.Window.window_s;
            string_of_int w.Window.count;
            Table.fmt_float w.Window.rate;
            string_of_int w.Window.errors;
            Table.fmt_float w.Window.mean_us;
            string_of_int w.Window.p50_us;
            string_of_int w.Window.p95_us;
            string_of_int w.Window.p99_us ])
      m.Serve.windows;
    Table.print t
  in
  let run socket interval count =
    let tty = try Unix.isatty Unix.stdout with Unix.Unix_error _ -> false in
    if (not tty) || count = 1 then
      (* non-TTY (scripts, CI): one table, no redraw loop *)
      render (fetch_metrics ~who:"top" ~socket)
    else begin
      let polls = ref 0 in
      let remaining () = count <= 0 || !polls < count in
      while remaining () do
        let m = fetch_metrics ~who:"top" ~socket in
        (* clear screen, cursor home — a minimal live dashboard *)
        print_string "\027[2J\027[H";
        render m;
        flush stdout;
        incr polls;
        if remaining () then Unix.sleepf interval
      done
    end
  in
  let interval =
    Arg.(
      value
      & opt timeout_conv 2.0
      & info [ "n"; "interval" ] ~docv:"S"
          ~doc:"Seconds between polls (positive; default 2).")
  in
  let count =
    Arg.(
      value
      & opt retries_conv 0
      & info [ "c"; "count" ] ~docv:"N"
          ~doc:"Stop after N polls (0 or absent: until interrupted; \
                always a single poll when stdout is not a TTY).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running $(b,schedtool serve) daemon: \
          polls the $(b,metrics) op every $(b,--interval) seconds and \
          renders requests/s, windowed latency quantiles (1s/10s/60s), \
          error counts and cache occupancy.  When stdout is not a TTY \
          it prints one snapshot table and exits.  Exits 125 when the \
          daemon is unreachable, 1 when it answers a typed error.")
    Term.(const run $ socket_arg $ interval $ count)

(* ------------------------------------------------------------------ *)
(* dot *)

let dot_cmd =
  let run alg model strategy block_id file =
    let blocks = load_blocks file in
    match List.find_opt (fun b -> b.Block.id = block_id) blocks with
    | None ->
        Printf.eprintf "no block %d (have %d blocks)\n" block_id
          (List.length blocks);
        exit 2
    | Some block ->
        let dag = Builder.build alg (opts_of model strategy) block in
        print_string (Dot.render dag)
  in
  let block_id =
    Arg.(
      value & opt int 0
      & info [ "n"; "block" ] ~docv:"N" ~doc:"Block index to export.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export one block's dependence DAG as Graphviz DOT.")
    Term.(const run $ builder_arg $ model_arg $ strategy_arg $ block_id $ file_arg)

(* ------------------------------------------------------------------ *)
(* gantt *)

let gantt_cmd =
  let run spec model strategy file =
    let blocks = load_blocks file in
    let opts = opts_of model strategy in
    List.iter
      (fun block ->
        Printf.printf "; block %d, %s\n" block.Block.id spec.Published.name;
        let s = Published.run ~opts spec block in
        Gantt.print s)
      blocks
  in
  let spec =
    Arg.(
      value
      & opt scheduler_conv Published.warren
      & info [ "A"; "scheduler" ] ~docv:"SCHED" ~doc:"Published algorithm.")
  in
  Cmd.v
    (Cmd.info "gantt"
       ~doc:"Schedule and render per-cycle issue timelines with stalls.")
    Term.(const run $ spec $ model_arg $ strategy_arg $ file_arg)

(* ------------------------------------------------------------------ *)
(* explain: decision provenance — per-block narrative, corpus
   decisiveness for every published strategy, JSONL/DOT/timeline
   exports and the optimality-gap report *)

let export_path_conv =
  let parse s =
    if s = "" then Error (`Msg "export path must not be empty") else Ok s
  in
  Arg.conv (parse, Format.pp_print_string)

(* Oracle feasibility pre-filter: beyond this size the branch-and-bound
   burns its whole budget without finishing, so --gap skips the search
   outright and reports the block as skipped. *)
let gap_max_insns = 32

(* One-line instruction text: a label prefix ("B0:\n\t...") would break
   the narrative's and the timeline's one-event-per-line shape. *)
let insn_line dag i =
  let s = String.trim (Insn.to_string (Dag.insn dag i)) in
  match String.rindex_opt s '\n' with
  | None -> s
  | Some k -> String.trim (String.sub s (k + 1) (String.length s - k - 1))

let explain_cmd =
  let run spec model strategy block_idx quiet jsonl_path dot_path
      timeline_path gap budget json_path file =
    let blocks = load_blocks file in
    if blocks = [] then begin
      Printf.eprintf "explain error: no blocks in input\n";
      exit 2
    end;
    let block =
      match List.find_opt (fun b -> b.Block.id = block_idx) blocks with
      | Some b -> b
      | None ->
          Printf.eprintf "explain error: no block %d (have %d blocks)\n"
            block_idx (List.length blocks);
          exit 124
    in
    let opts = opts_of model strategy in
    let config = Published.engine_config spec in
    let write_export what path text =
      if path = "-" then print_string text
      else
        try Out_channel.with_open_text path (fun oc -> output_string oc text)
        with Sys_error msg ->
          Printf.eprintf "%s error: %s\n" what msg;
          exit 125
    in
    (* -- narrative: one block, the chosen scheduler, every decision -- *)
    (* the full static pass (not compute_for) so the DOT export below
       can highlight the slack-0 critical path *)
    let dag = Builder.build (Published.builder spec) opts block in
    let annot = Static_pass.compute dag in
    let order, decisions = Engine.run_traced config ~annot dag in
    let schedule =
      let s = Schedule.make dag order in
      if spec.Published.postpass_fixup then Fixup.run s else s
    in
    if not quiet then begin
      Printf.printf "block %d: %s, %d instructions, %d decisions\n\n"
        block.Block.id spec.Published.name (Block.length block)
        (List.length decisions);
      let insn i = insn_line dag i in
      List.iter
        (fun (d : Engine.decision) ->
          Printf.printf "t=%-3d candidates: {%s}\n" d.Engine.time
            (String.concat ", " (List.map string_of_int d.Engine.candidates));
          List.iter
            (fun (h, best, survivors) ->
              Printf.printf "      %-36s best %4d -> {%s}\n"
                (Heuristic.to_string h) best
                (String.concat ", " (List.map string_of_int survivors)))
            d.Engine.trail;
          if d.Engine.tie_break then
            Printf.printf "      program-order tie-break\n";
          Printf.printf "      issued %d%s: %s\n" d.Engine.chosen
            (if d.Engine.trail = [] then " (forced)" else "")
            (insn d.Engine.chosen))
        decisions;
      Printf.printf "\nissue timeline:\n%s" (Gantt.render schedule)
    end;
    (* -- DOT export: the narrative block's DAG, critical path marked - *)
    (match dot_path with
    | None -> ()
    | Some path ->
        let critical =
          List.filter
            (fun i -> annot.Annot.slack.(i) = 0)
            (List.init (Dag.length dag) Fun.id)
        in
        write_export "dot" path
          (Dot.render
             ~name:(Printf.sprintf "block%d" block.Block.id)
             ~highlight:critical dag));
    (* -- JSONL decision trace: the chosen scheduler, whole corpus ---- *)
    (match jsonl_path with
    | None -> ()
    | Some path ->
        let sg = Engine.signature config in
        let ds =
          List.concat_map
            (fun b ->
              let dag = Builder.build (Published.builder spec) opts b in
              let annot =
                Static_pass.compute_for (Published.heuristics_of spec) dag
              in
              let _, decisions = Engine.run_traced config ~annot dag in
              List.map
                (fun (d : Engine.decision) ->
                  { Explain.block = b.Block.id;
                    strategy = sg;
                    time = d.Engine.time;
                    candidates = d.Engine.candidates;
                    steps =
                      List.map
                        (fun (h, best, survivors) ->
                          { Explain.heuristic = Heuristic.to_string h;
                            best; survivors })
                        d.Engine.trail;
                    chosen = d.Engine.chosen;
                    tie_break = d.Engine.tie_break })
                decisions)
            blocks
        in
        let text = Explain.decisions_to_jsonl ds in
        (match Explain.decisions_of_jsonl text with
        | Ok ds' when ds' = ds -> ()
        | _ ->
            Printf.eprintf
              "internal error: decision JSONL round trip mismatch\n";
            exit 3);
        write_export "jsonl" path text);
    (* -- timeline export: issue cycles as Chrome trace events -------- *)
    (match timeline_path with
    | None -> ()
    | Some path ->
        let spans =
          List.concat_map
            (fun b ->
              let s = Published.run ~opts spec b in
              let sim = Schedule.simulate s in
              let dag = s.Schedule.dag in
              let model = Dag.model dag in
              Array.to_list
                (Array.mapi
                   (fun k node ->
                     { Trace.name = insn_line dag node;
                       cat = "issue";
                       ts_us = float_of_int sim.Pipeline.issue_cycle.(k);
                       dur_us =
                         float_of_int
                           (max 1 (model.Latency.exec_time (Dag.insn dag node)));
                       pid = b.Block.id;
                       tid = 0;
                       args = [ ("node", Json.Int node) ] })
                   s.Schedule.order))
            blocks
        in
        let pid_names =
          List.map
            (fun b ->
              (b.Block.id, Printf.sprintf "block %d" b.Block.id))
            blocks
        in
        let json = Trace.to_json ~pid_names spans in
        let text = Stats.Json.to_string json ^ "\n" in
        (match Stats.Json.of_string text with
        | Ok j
          when (match Trace.events_of_json j with
               | Ok spans' -> spans' = spans
               | Error _ -> false) -> ()
        | _ ->
            Printf.eprintf
              "internal error: timeline JSON round trip mismatch\n";
            exit 3);
        write_export "timeline" path text);
    (* -- decisiveness: every published strategy over the corpus ------ *)
    Explain.enable ();
    Explain.reset ();
    List.iter
      (fun sp ->
        List.iter (fun b -> ignore (Published.run ~opts sp b)) blocks)
      Published.all;
    let stats = Explain.snapshot () in
    Explain.disable ();
    Explain.reset ();
    if not quiet then
      List.iter
        (fun sp ->
          let sg = Engine.signature (Published.engine_config sp) in
          match
            List.find_opt (fun st -> st.Explain.signature = sg) stats
          with
          | None -> ()
          | Some st ->
              Printf.printf
                "\ndecisiveness: %s (%s)\n  %d decisions: %d forced, %d \
                 program-order tie-breaks, %d weight-overruled\n"
                sp.Published.name sg st.Explain.decisions st.Explain.forced
                st.Explain.tie_breaks st.Explain.overruled;
              let t =
                Table.create ~title:""
                  [ "rank"; "heuristic"; "consulted"; "decided";
                    "eliminated" ]
              in
              List.iter
                (fun (r : Explain.rank_stat) ->
                  Table.add_row t
                    [ string_of_int r.Explain.rank; r.Explain.heuristic;
                      string_of_int r.Explain.consulted;
                      string_of_int r.Explain.decided;
                      string_of_int r.Explain.eliminated ])
                st.Explain.ranks;
              print_string (Table.render t);
              (match Explain.never_consulted st with
              | [] -> ()
              | dead ->
                  Printf.printf "  never consulted: %s\n"
                    (String.concat ", " dead)))
        Published.all;
    (* -- optimality gap: oracle vs every strategy, same cost model --- *)
    let gap_json = ref Json.Null in
    if gap then begin
      (* one oracle run per distinct (block, builder) — specs sharing a
         builder share the search *)
      let oracle_cache : (int * Builder.algorithm, Optimal.result option)
          Hashtbl.t =
        Hashtbl.create 64
      in
      let oracle key dag =
        match Hashtbl.find_opt oracle_cache key with
        | Some r -> r
        | None ->
            let r =
              if Dag.length dag > gap_max_insns then None
              else
                let res = Optimal.run ~budget dag in
                if res.Optimal.optimal then Some res else None
            in
            Hashtbl.add oracle_cache key r;
            r
      in
      let strategies =
        List.map
          (fun sp ->
            let per_block =
              List.filter_map
                (fun b ->
                  let alg = Published.builder sp in
                  let dag = Builder.build alg opts b in
                  match oracle (b.Block.id, alg) dag with
                  | None -> None
                  | Some res ->
                      let s = Published.run_on_dag sp dag in
                      let heur = Optimal.evaluate dag s.Schedule.order in
                      Some (b.Block.id, Dag.length dag, heur,
                            res.Optimal.cycles))
                blocks
            in
            (sp, per_block))
          Published.all
      in
      let pct heur opt =
        100.0 *. float_of_int (heur - opt) /. float_of_int (max 1 opt)
      in
      if not quiet then begin
        Printf.printf "\noptimality gap (budget %d, blocks <= %d insns):\n"
          budget gap_max_insns;
        let t =
          Table.create ~title:""
            [ "scheduler"; "feasible"; "skipped"; "cycles"; "optimal";
              "gap %"; "optimal hits" ]
        in
        List.iter
          (fun (sp, per_block) ->
            let feasible = List.length per_block in
            let heur =
              List.fold_left (fun a (_, _, h, _) -> a + h) 0 per_block
            in
            let opt =
              List.fold_left (fun a (_, _, _, o) -> a + o) 0 per_block
            in
            let hits =
              List.length
                (List.filter (fun (_, _, h, o) -> h = o) per_block)
            in
            Table.add_row t
              [ sp.Published.short; string_of_int feasible;
                string_of_int (List.length blocks - feasible);
                string_of_int heur; string_of_int opt;
                Printf.sprintf "%.2f" (pct heur opt);
                string_of_int hits ])
          strategies;
        print_string (Table.render t)
      end;
      gap_json :=
        Json.Obj
          [ ("budget", Json.Int budget);
            ("max_insns", Json.Int gap_max_insns);
            ("blocks", Json.Int (List.length blocks));
            ( "strategies",
              Json.List
                (List.map
                   (fun (sp, per_block) ->
                     let heur =
                       List.fold_left (fun a (_, _, h, _) -> a + h) 0
                         per_block
                     in
                     let opt =
                       List.fold_left (fun a (_, _, _, o) -> a + o) 0
                         per_block
                     in
                     Json.Obj
                       [ ("scheduler", Json.String sp.Published.short);
                         ( "signature",
                           Json.String
                             (Engine.signature (Published.engine_config sp))
                         );
                         ("feasible", Json.Int (List.length per_block));
                         ( "skipped",
                           Json.Int
                             (List.length blocks - List.length per_block) );
                         ("heuristic_cycles", Json.Int heur);
                         ("optimal_cycles", Json.Int opt);
                         ("gap_pct", Json.Float (pct heur opt));
                         ( "per_block",
                           Json.List
                             (List.map
                                (fun (id, insns, h, o) ->
                                  Json.Obj
                                    [ ("block", Json.Int id);
                                      ("insns", Json.Int insns);
                                      ("heuristic", Json.Int h);
                                      ("optimal", Json.Int o) ])
                                per_block) ) ])
                   strategies) ) ]
    end;
    (* -- machine-readable report: decisiveness (+ gap), self-checked - *)
    match json_path with
    | None -> ()
    | Some path ->
        let fields =
          [ ("explain", Explain.to_json stats) ]
          @ if gap then [ ("gap", !gap_json) ] else []
        in
        let text = Stats.Json.to_string (Json.Obj fields) ^ "\n" in
        (match Stats.Json.of_string text with
        | Ok j
          when (match Json.member "explain" j with
               | Some e -> (
                   match Explain.of_json e with
                   | Ok stats' -> Explain.equal stats stats'
                   | Error _ -> false)
               | None -> false) -> ()
        | _ ->
            Printf.eprintf "internal error: explain JSON round trip mismatch\n";
            exit 3);
        write_export "json" path text
  in
  let spec =
    Arg.(
      value
      & opt scheduler_conv Published.warren
      & info [ "A"; "scheduler" ] ~docv:"SCHED"
          ~doc:"Published algorithm for the narrative and exports \
                (decisiveness and $(b,--gap) always cover all six).")
  in
  let block_idx =
    Arg.(
      value & opt int 0
      & info [ "n"; "block" ] ~docv:"N"
          ~doc:"Block to narrate and $(b,--dot)-export.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ]
          ~doc:"Suppress the narrative and tables (exports still run).")
  in
  let jsonl_path =
    Arg.(
      value
      & opt (some export_path_conv) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:"Write the decision trace of $(b,-A) over the whole corpus \
                as JSONL, one decision object per line ('-' for stdout; \
                schema in docs/FORMAT.md).")
  in
  let dot_path =
    Arg.(
      value
      & opt (some export_path_conv) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Export block $(b,-n)'s dependence DAG as Graphviz DOT with \
                arc kinds styled and the slack-0 critical path highlighted \
                ('-' for stdout).")
  in
  let timeline_path =
    Arg.(
      value
      & opt (some export_path_conv) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:"Export issue cycles as a Chrome trace-event timeline (one \
                process lane per block, loadable in Perfetto; '-' for \
                stdout).")
  in
  let gap =
    Arg.(
      value & flag
      & info [ "gap" ]
          ~doc:"Run the branch-and-bound oracle on every oracle-feasible \
                block and report per-strategy optimality gaps in the same \
                cost model.")
  in
  let budget =
    Arg.(
      value & opt int Optimal.default_budget
      & info [ "budget" ] ~docv:"N"
          ~doc:"Search-node budget per oracle run (with $(b,--gap)).")
  in
  let json_path =
    Arg.(
      value
      & opt (some export_path_conv) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write decisiveness statistics (and the $(b,--gap) report) \
                as JSON ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain scheduling decisions: a per-block decision narrative \
          with its issue timeline, corpus-wide heuristic decisiveness for \
          all six published strategies, JSONL/DOT/Perfetto exports, and \
          an optimality-gap report against the branch-and-bound oracle.")
    Term.(
      const run $ spec $ model_arg $ strategy_arg $ block_idx $ quiet
      $ jsonl_path $ dot_path $ timeline_path $ gap $ budget $ json_path
      $ file_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "DAG construction and heuristic instruction scheduling (MICRO-24 1991 reproduction)" in
  let info = Cmd.info "schedtool" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; stats_cmd; build_cmd; schedule_cmd; compare_cmd;
            optimal_cmd; chain_cmd; batch_cmd; shard_cmd; worker_cmd;
            fleet_cmd; serve_cmd; client_cmd; top_cmd; dot_cmd; gantt_cmd;
            explain_cmd ]))
