(** Descriptive-statistics accumulator used for the structural columns of
    Tables 3-5 (max and average of per-instruction / per-block counts),
    plus the multi-run wall-clock timing helper behind Tables 4-5. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit

val count : t -> int
val mean : t -> float
val max_value : t -> float
val min_value : t -> float
val total : t -> float

val of_list : float list -> t
val of_ints : int list -> t

(** [merge a b] is the accumulator of the concatenated samples: counts
    and sums add, max/min combine.  Neither argument is mutated.  Used to
    fold per-shard statistics into corpus-level ones. *)
val merge : t -> t -> t

(** Hand-rolled JSON, used for the machine-readable perf reports
    ([BENCH_parallel.json], [BENCH_shard.json], [schedtool batch/shard
    --json]).  The implementation lives in {!Ds_obs.Json} (the
    observability layer serializes traces and metrics through it and
    sits below [ds_util]); this transparent alias preserves every
    historical [Ds_util.Stats.Json] reference and type equality.  See
    [lib/obs/json.mli] for the full contract (exact float round trips,
    non-finite floats as [null], total [of_string], typed decode
    errors with path-threaded field accessors). *)
module Json = Ds_obs.Json

(** Accumulator summary as JSON ([count]/[mean]/[min]/[max]/[total]). *)
val to_json : t -> Json.t

(** [time_runs ~runs f] runs [f ()] [runs] times and returns (mean
    wall-clock seconds, last result) — the analogue of the paper's
    "average of user+sys over five runs".  Clocked by the
    monotonic-leaning {!Ds_obs.Clock}, so wall-clock steps can never
    yield a negative mean. *)
val time_runs : runs:int -> (unit -> 'a) -> float * 'a
