(** Multi-process fleet runner: shards as separate OS worker processes
    with fault-tolerant supervision.  See fleet.mli for the contract. *)

module Json = Ds_util.Stats.Json

(* ------------------------------------------------------------------ *)
(* shard manifests *)

type manifest = {
  files : string list;
  algorithm : Ds_dag.Builder.algorithm;
  strategy : Ds_dag.Disambiguate.t;
  model : string;
  domains : int;
}

let manifest_to_json m =
  Json.Obj
    [ ("files", Json.List (List.map (fun f -> Json.String f) m.files));
      ("algorithm", Json.String (Ds_dag.Builder.to_string m.algorithm));
      ("strategy", Json.String (Ds_dag.Disambiguate.to_string m.strategy));
      ("model", Json.String m.model);
      ("domains", Json.Int m.domains) ]

let manifest_of_json ?(path = []) json =
  let ( let* ) = Result.bind in
  let* files = Json.get_list ~path "files" Json.decode_string json in
  let* algorithm_name = Json.get_string ~path "algorithm" json in
  let* algorithm =
    match Ds_dag.Builder.of_string algorithm_name with
    | Some a -> Ok a
    | None ->
        Json.decode_error ~path:(path @ [ "algorithm" ])
          (Printf.sprintf "unknown algorithm %S" algorithm_name)
  in
  let* strategy_name = Json.get_string ~path "strategy" json in
  let* strategy =
    match Ds_dag.Disambiguate.of_string strategy_name with
    | Some s -> Ok s
    | None ->
        Json.decode_error ~path:(path @ [ "strategy" ])
          (Printf.sprintf "unknown strategy %S" strategy_name)
  in
  let* model = Json.get_string ~path "model" json in
  let* domains = Json.get_int ~path "domains" json in
  Ok { files; algorithm; strategy; model; domains = max 1 domains }

let config_of_manifest m =
  match Ds_machine.Latency.by_name m.model with
  | None -> Error (Printf.sprintf "unknown latency model %S" m.model)
  | Some model ->
      Ok
        { Batch.section6 with
          Batch.algorithm = m.algorithm;
          opts =
            { Ds_dag.Opts.default with
              Ds_dag.Opts.model; strategy = m.strategy } }

let plan ?(policy = Shard.Balanced) ~workers ~algorithm ~strategy ~model
    ~domains files =
  let workers = max 1 workers in
  (* weight = file byte size: the only balance signal available without
     parsing; an unreadable file weighs 0 and its worker reports the
     failure, which is the degradation path, not an orchestrator error *)
  let weight f = try (Unix.stat f).Unix.st_size with Unix.Unix_error _ -> 0 in
  Shard.partition_weighted policy ~shards:workers ~weight files
  |> Array.map (fun files -> { files; algorithm; strategy; model; domains })
  |> Array.to_list

(* ------------------------------------------------------------------ *)
(* supervision outcomes *)

type failure =
  | Exited of int
  | Signaled of int
  | Timed_out
  | Bad_output of string

let failure_to_string = function
  | Exited c -> Printf.sprintf "exit %d" c
  | Signaled s -> Printf.sprintf "signal %d" s
  | Timed_out -> "timeout"
  | Bad_output msg -> "bad output: " ^ msg

(** One supervised attempt, in attempt order.  [duration_s] is the
    orchestrator-observed spawn-to-settle time on the monotonic-leaning
    {!Ds_obs.Clock} (so never negative); [backoff_s] is the delay
    scheduled {e after} this attempt (0 for a success or for the final
    exhausted attempt); [outcome = None] means success. *)
type attempt = {
  duration_s : float;
  backoff_s : float;
  outcome : failure option;
}

type worker_log = {
  shard : int;
  files : string list;
  attempts : int;
  failures : failure list;
  attempt_log : attempt list;
  wall_s : float;
  report : Batch.report option;
}

type t = {
  workers : int;
  timeout_s : float;
  retries : int;
  corpus : string list;
  aggregate : Batch.report;
  logs : worker_log list;
}

let per_shard t = List.filter_map (fun l -> l.report) t.logs

let failed_shards t =
  List.filter_map
    (fun l -> if l.report = None then Some l.shard else None)
    t.logs

type progress = {
  shard : int;
  state : string;
  done_blocks : int;
  total_blocks : int;
  phase : string;
  rss_kb : int;
  beat_age_s : float;
  stalled : bool;
}

type options = {
  timeout_s : float;
  retries : int;
  backoff_s : float;
  poll_s : float;
  stall_s : float;
  heartbeat_s : float;
  on_progress : (progress list -> unit) option;
}

let default_options =
  { timeout_s = 60.0; retries = 2; backoff_s = 0.1; poll_s = 0.005;
    stall_s = 5.0; heartbeat_s = 0.5; on_progress = None }

(* ------------------------------------------------------------------ *)
(* temp-file hygiene: every temp the orchestrator creates (manifests,
   worker output captures, the progress log stream) is registered here,
   and a one-time [at_exit] sweep removes whatever is still registered —
   so Ctrl-C (the SIGINT handler exits 130), a failed-shards exit 4, or
   any exceptional path leaves the temp directory clean.  The normal
   path releases each file as soon as the run is done with it. *)

let temp_registry : (string, unit) Hashtbl.t = Hashtbl.create 16
let temp_lock = Mutex.create ()

let cleanup_temps () =
  Mutex.lock temp_lock;
  let paths = Hashtbl.fold (fun p () acc -> p :: acc) temp_registry [] in
  Hashtbl.reset temp_registry;
  Mutex.unlock temp_lock;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths

let cleanup_installed = Atomic.make false

let register_temp p =
  if not (Atomic.exchange cleanup_installed true) then at_exit cleanup_temps;
  Mutex.lock temp_lock;
  Hashtbl.replace temp_registry p ();
  Mutex.unlock temp_lock

let release_temp p =
  Mutex.lock temp_lock;
  Hashtbl.remove temp_registry p;
  Mutex.unlock temp_lock;
  try Sys.remove p with Sys_error _ -> ()

(* live worker pids, so an interrupt can put the children down before
   the orchestrator exits *)
let live_pids : (int, unit) Hashtbl.t = Hashtbl.create 16
let pid_lock = Mutex.create ()

let track_pid pid =
  Mutex.lock pid_lock;
  Hashtbl.replace live_pids pid ();
  Mutex.unlock pid_lock

let untrack_pid pid =
  Mutex.lock pid_lock;
  Hashtbl.remove live_pids pid;
  Mutex.unlock pid_lock

let kill_live_workers () =
  Mutex.lock pid_lock;
  let pids = Hashtbl.fold (fun p () acc -> p :: acc) live_pids [] in
  Hashtbl.reset live_pids;
  Mutex.unlock pid_lock;
  List.iter
    (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    pids

(* ------------------------------------------------------------------ *)
(* the supervisor *)

type slot_state =
  | Waiting of float (* earliest next-attempt time *)
  | Running of { pid : int; started : float }
  | Finished

type slot = {
  index : int;
  manifest : manifest;
  manifest_path : string;
  out_path : string;
  mutable state : slot_state;
  mutable attempts : int;
  mutable rev_failures : failure list;
  mutable rev_attempts : attempt list;
  mutable work_s : float;
  mutable result : Batch.report option;
}

let worker_env ?stream ?(heartbeat_s = default_options.heartbeat_s) ~shard
    ~attempt () =
  let ours e =
    String.starts_with ~prefix:"DAGSCHED_WORKER_SHARD=" e
    || String.starts_with ~prefix:"DAGSCHED_WORKER_ATTEMPT=" e
    || String.starts_with ~prefix:(Ds_obs.Obs.env_var ^ "=") e
    || String.starts_with ~prefix:(Ds_obs.Log.env_path ^ "=") e
    || String.starts_with ~prefix:(Ds_obs.Log.env_level ^ "=") e
    || String.starts_with ~prefix:(Ds_obs.Log.env_heartbeat ^ "=") e
  in
  let base =
    Array.to_list (Unix.environment ()) |> List.filter (fun e -> not (ours e))
  in
  (* workers inherit the orchestrator's observability state and ship
     their spans/metrics home inside the report JSON *)
  let obs =
    match Ds_obs.Obs.env_value () with
    | Some v -> [ Ds_obs.Obs.env_var ^ "=" ^ v ]
    | None -> []
  in
  (* when the fleet has a log stream, workers join it (append mode) and
     arm their heartbeat so the orchestrator can tail live progress *)
  let log_env =
    match stream with
    | None -> []
    | Some path ->
        [ Ds_obs.Log.env_path ^ "=" ^ path;
          (Ds_obs.Log.env_level ^ "="
          ^
          match Ds_obs.Log.level () with
          | Some l -> Ds_obs.Log.level_to_string l
          | None -> "info");
          Printf.sprintf "%s=%g" Ds_obs.Log.env_heartbeat heartbeat_s ]
  in
  Array.of_list
    (base @ obs @ log_env
    @ [ "DAGSCHED_WORKER_SHARD=" ^ string_of_int shard;
        "DAGSCHED_WORKER_ATTEMPT=" ^ string_of_int attempt ])

(* Worker reports may carry an "obs" section (trace spans + metrics
   snapshot) when the orchestrator enabled observability.  Spans are
   re-homed to the shard's fleet pid (shard + 1; the orchestrator is
   pid 0) and injected into the orchestrator's own recorder, forming
   the single fleet-wide timeline.  Observability must never fail the
   pipeline: a malformed obs section is dropped, the report stands. *)
let absorb_worker_obs ~shard json =
  match Json.member "obs" json with
  | None -> ()
  | Some obs ->
      (match Json.member "trace" obs with
      | Some tr ->
          (match Ds_obs.Trace.events_of_json tr with
          | Ok spans ->
              Ds_obs.Trace.inject
                (List.map (Ds_obs.Trace.reassign_pid (shard + 1)) spans)
          | Error _ -> ());
          (* counter samples (heap/GC gauges) ride in the same trace
             object and land on the worker's process lane too *)
          (match Ds_obs.Trace.counters_of_json tr with
          | Ok cs ->
              Ds_obs.Trace.inject_counters
                (List.map (Ds_obs.Trace.reassign_counter_pid (shard + 1)) cs)
          | Error _ -> ())
      | None -> ());
      (match Json.member "metrics" obs with
      | Some m -> (
          match Ds_obs.Metrics.snapshot_of_json m with
          | Ok s -> Ds_obs.Metrics.absorb s
          | Error _ -> ())
      | None -> ());
      (match Json.member "resource" obs with
      | Some r -> (
          match Ds_obs.Resource.of_json r with
          | Ok rows -> Ds_obs.Resource.absorb rows
          | Error _ -> ())
      | None -> ());
      (match Json.member "explain" obs with
      | Some e -> (
          match Ds_obs.Explain.of_json e with
          | Ok s -> Ds_obs.Explain.absorb s
          | Error _ -> ())
      | None -> ())

let parse_output slot =
  match In_channel.with_open_bin slot.out_path In_channel.input_all with
  | exception Sys_error msg -> Error (Bad_output ("unreadable output: " ^ msg))
  | text -> (
      match Json.of_string text with
      | Error msg -> Error (Bad_output ("output does not parse: " ^ msg))
      | Ok json -> (
          match Batch.report_of_json json with
          | Ok r ->
              absorb_worker_obs ~shard:slot.index json;
              Ok r
          | Error e ->
              Error (Bad_output ("bad report: " ^ Json.error_to_string e))))

let run ?(options = default_options) ~worker ~corpus manifests =
  let timeout_s = Float.max 1e-3 options.timeout_s in
  let retries = max 0 options.retries in
  let backoff_s = Float.max 0.0 options.backoff_s in
  let poll_s = Float.max 1e-4 options.poll_s in
  let stall_s = Float.max 1e-3 options.stall_s in
  let heartbeat_s = Float.max 0.0 options.heartbeat_s in
  let wall0 = Ds_obs.Clock.now () in
  let log_fleet ?(fields = []) level msg =
    Ds_obs.Log.log level ~scope:"fleet" ~fields msg
  in
  (* the heartbeat stream the workers append to: the configured log
     sink when there is one, else a registered temp file created only
     when someone is watching (--progress) *)
  let stream, stream_is_temp =
    match Ds_obs.Log.sink_path () with
    | Some p -> (Some p, false)
    | None ->
        if Option.is_some options.on_progress then (
          let p = Filename.temp_file "dagsched_log" ".jsonl" in
          register_temp p;
          (Some p, true))
        else (None, false)
  in
  let slots =
    List.mapi
      (fun index m ->
        let manifest_path = Filename.temp_file "dagsched_manifest" ".json" in
        register_temp manifest_path;
        Out_channel.with_open_text manifest_path (fun oc ->
            output_string oc (Json.to_string (manifest_to_json m));
            output_char oc '\n');
        let out_path = Filename.temp_file "dagsched_worker" ".json" in
        register_temp out_path;
        { index; manifest = m; manifest_path; out_path;
          state = Waiting 0.0; attempts = 0; rev_failures = [];
          rev_attempts = []; work_s = 0.0; result = None })
      manifests
  in
  let n = List.length slots in
  (* per-shard live-progress state fed by tailing the stream *)
  let hb_done = Array.make n 0
  and hb_total = Array.make n 0
  and hb_phase = Array.make n ""
  and hb_rss = Array.make n 0
  and hb_last = Array.make n Float.neg_infinity in
  let tail = Option.map Ds_obs.Log.tail_create stream in
  (* Ctrl-C: put the children down, then exit 130; the at_exit sweep
     removes every registered temp file on the way out *)
  let old_sigint =
    match
      Sys.signal Sys.sigint
        (Sys.Signal_handle
           (fun _ ->
             kill_live_workers ();
             exit 130))
    with
    | behavior -> Some behavior
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let cleanup () =
    (match old_sigint with
    | Some b -> ( try Sys.set_signal Sys.sigint b with Sys_error _ -> ())
    | None -> ());
    (match tail with Some t -> Ds_obs.Log.tail_close t | None -> ());
    List.iter
      (fun s ->
        (match s.state with
        | Running { pid; _ } -> (
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            untrack_pid pid;
            try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        | Waiting _ | Finished -> ());
        release_temp s.manifest_path;
        release_temp s.out_path)
      slots;
    if stream_is_temp then
      match stream with Some p -> release_temp p | None -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let spawn slot =
    slot.attempts <- slot.attempts + 1;
    let spawn0 = Ds_obs.Clock.now () in
    let argv = Array.append worker [| slot.manifest_path |] in
    let fd =
      Unix.openfile slot.out_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
        0o600
    in
    let pid =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.create_process_env argv.(0) argv
            (worker_env ?stream ~heartbeat_s ~shard:slot.index
               ~attempt:slot.attempts ())
            Unix.stdin fd Unix.stderr)
    in
    track_pid pid;
    let started = Ds_obs.Clock.now () in
    if Ds_obs.Trace.enabled () then
      Ds_obs.Trace.record ~cat:"fleet" ~name:"spawn"
        ~args:
          [ ("shard", Json.Int slot.index);
            ("attempt", Json.Int slot.attempts) ]
        ~start_s:spawn0 ~stop_s:started ();
    log_fleet Ds_obs.Log.Info
      ~fields:
        [ ("shard", Json.Int slot.index);
          ("attempt", Json.Int slot.attempts);
          ("os_pid", Json.Int pid) ]
      "spawn";
    slot.state <- Running { pid; started }
  in
  let settle slot started outcome =
    let stopped = Ds_obs.Clock.now () in
    let duration_s = Ds_obs.Clock.duration ~start:started ~stop:stopped in
    slot.work_s <- slot.work_s +. duration_s;
    let book ~backoff_s failure =
      slot.rev_attempts <-
        { duration_s; backoff_s; outcome = failure } :: slot.rev_attempts;
      if Ds_obs.Trace.enabled () then
        Ds_obs.Trace.record ~cat:"fleet" ~name:"attempt"
          ~args:
            [ ("shard", Json.Int slot.index);
              ("attempt", Json.Int slot.attempts);
              ( "outcome",
                Json.String
                  (match failure with
                  | None -> "ok"
                  | Some f -> failure_to_string f) ) ]
          ~start_s:started ~stop_s:stopped ()
    in
    match outcome with
    | Ok r ->
        book ~backoff_s:0.0 None;
        log_fleet Ds_obs.Log.Info
          ~fields:
            [ ("shard", Json.Int slot.index);
              ("attempt", Json.Int slot.attempts);
              ("duration_s", Json.Float duration_s) ]
          "attempt ok";
        slot.result <- Some r;
        slot.state <- Finished
    | Error f ->
        slot.rev_failures <- f :: slot.rev_failures;
        if slot.attempts > retries then begin
          book ~backoff_s:0.0 (Some f);
          log_fleet Ds_obs.Log.Error
            ~fields:
              [ ("shard", Json.Int slot.index);
                ("attempts", Json.Int slot.attempts);
                ("outcome", Json.String (failure_to_string f)) ]
            "shard failed";
          slot.state <- Finished
        end
        else begin
          (* exponential backoff: backoff_s, 2*backoff_s, 4*backoff_s, ... *)
          let delay = backoff_s *. (2.0 ** float_of_int (slot.attempts - 1)) in
          book ~backoff_s:delay (Some f);
          log_fleet Ds_obs.Log.Warn
            ~fields:
              [ ("shard", Json.Int slot.index);
                ("attempt", Json.Int slot.attempts);
                ("outcome", Json.String (failure_to_string f));
                ("backoff_s", Json.Float delay) ]
            "retry scheduled";
          slot.state <- Waiting (Ds_obs.Clock.now () +. delay)
        end
  in
  (* drain freshly appended heartbeats into the per-shard state *)
  let poll_heartbeats () =
    match tail with
    | None -> ()
    | Some t ->
        List.iter
          (fun (ev : Ds_obs.Log.event) ->
            if ev.Ds_obs.Log.scope = "heartbeat" then
              match Json.member "shard" (Json.Obj ev.Ds_obs.Log.fields) with
              | Some (Json.Int s) when s >= 0 && s < n ->
                  hb_last.(s) <- ev.Ds_obs.Log.ts_s;
                  let int_field k d =
                    match Json.member k (Json.Obj ev.Ds_obs.Log.fields) with
                    | Some (Json.Int v) -> v
                    | _ -> d
                  in
                  hb_done.(s) <- int_field "done" hb_done.(s);
                  hb_total.(s) <- int_field "total" hb_total.(s);
                  hb_rss.(s) <- int_field "rss_kb" hb_rss.(s);
                  (match
                     Json.member "phase" (Json.Obj ev.Ds_obs.Log.fields)
                   with
                  | Some (Json.String p) -> hb_phase.(s) <- p
                  | _ -> ())
              | _ -> ())
          (Ds_obs.Log.tail_poll t)
  in
  let progress_now now =
    List.map
      (fun slot ->
        let state, running_since =
          match (slot.state, slot.result) with
          | Running { started; _ }, _ -> ("running", Some started)
          | Waiting _, _ -> ("waiting", None)
          | Finished, Some _ -> ("ok", None)
          | Finished, None -> ("failed", None)
        in
        let i = slot.index in
        let beat_age_s, stalled =
          match running_since with
          | None -> (0.0, false)
          | Some started ->
              let last = Float.max started hb_last.(i) in
              let age = Float.max 0.0 (now -. last) in
              (age, stream <> None && age > stall_s)
        in
        { shard = i; state; done_blocks = hb_done.(i);
          total_blocks = hb_total.(i); phase = hb_phase.(i);
          rss_kb = hb_rss.(i); beat_age_s; stalled })
      slots
  in
  (* re-render only on a visible change (beat age alone doesn't count
     until it crosses the stall threshold) *)
  let last_key = ref [] in
  let render_progress now =
    match options.on_progress with
    | None -> ()
    | Some f ->
        let ps = progress_now now in
        let key =
          List.map
            (fun p ->
              ( p.shard, p.state, p.done_blocks, p.total_blocks, p.phase,
                p.rss_kb, p.stalled ))
            ps
        in
        if key <> !last_key then begin
          last_key := key;
          f ps
        end
  in
  let unfinished () = List.exists (fun s -> s.state <> Finished) slots in
  while unfinished () do
    let progressed = ref false in
    let now = Ds_obs.Clock.now () in
    poll_heartbeats ();
    List.iter
      (fun slot ->
        match slot.state with
        | Finished -> ()
        | Waiting not_before ->
            if not_before <= now then begin
              spawn slot;
              progressed := true
            end
        | Running { pid; started } -> (
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ ->
                if now -. started > timeout_s then begin
                  log_fleet Ds_obs.Log.Warn
                    ~fields:
                      [ ("shard", Json.Int slot.index);
                        ("attempt", Json.Int slot.attempts);
                        ("os_pid", Json.Int pid) ]
                    "timeout, killing";
                  (* a kill on an already-exited pid still succeeds while
                     the zombie is unreaped, so this cannot race *)
                  (try Unix.kill pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  ignore (Unix.waitpid [] pid);
                  untrack_pid pid;
                  settle slot started (Error Timed_out);
                  progressed := true
                end
            | _, status ->
                untrack_pid pid;
                let outcome =
                  match status with
                  | Unix.WEXITED 0 -> parse_output slot
                  | Unix.WEXITED c -> Error (Exited c)
                  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Error (Signaled s)
                in
                settle slot started outcome;
                progressed := true))
      slots;
    render_progress now;
    if (not !progressed) && unfinished () then Unix.sleepf poll_s
  done;
  poll_heartbeats ();
  render_progress (Ds_obs.Clock.now ());
  let wall_s = Ds_obs.Clock.since wall0 in
  let logs =
    List.map
      (fun s ->
        { shard = s.index; files = s.manifest.files; attempts = s.attempts;
          failures = List.rev s.rev_failures;
          attempt_log = List.rev s.rev_attempts; wall_s = s.work_s;
          report = s.result })
      slots
  in
  let domains =
    match manifests with m :: _ -> max 1 m.domains | [] -> 1
  in
  let surviving = List.filter_map (fun s -> s.result) slots in
  let aggregate =
    Ds_obs.Trace.with_span ~cat:"fleet" "merge" (fun () ->
        Batch.report_merge ~domains ~wall_s surviving)
  in
  { workers = List.length manifests; timeout_s; retries; corpus; aggregate;
    logs }

(* ------------------------------------------------------------------ *)
(* equality (field-wise, NaN-tolerant on embedded reports) *)

let float_eq a b = a = b || (Float.is_nan a && Float.is_nan b)

let report_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Batch.report_equal a b
  | _ -> false

let attempt_equal a b =
  float_eq a.duration_s b.duration_s
  && float_eq a.backoff_s b.backoff_s
  && a.outcome = b.outcome

let log_equal (a : worker_log) (b : worker_log) =
  a.shard = b.shard && a.files = b.files && a.attempts = b.attempts
  && a.failures = b.failures
  && List.length a.attempt_log = List.length b.attempt_log
  && List.for_all2 attempt_equal a.attempt_log b.attempt_log
  && float_eq a.wall_s b.wall_s
  && report_opt_equal a.report b.report

let equal a b =
  a.workers = b.workers
  && float_eq a.timeout_s b.timeout_s
  && a.retries = b.retries && a.corpus = b.corpus
  && Batch.report_equal a.aggregate b.aggregate
  && List.length a.logs = List.length b.logs
  && List.for_all2 log_equal a.logs b.logs

(* ------------------------------------------------------------------ *)
(* JSON: the shard merged-report shape (corpus/aggregate/per_shard) plus
   a fleet section, so downstream aggregate consumers read both alike *)

let failure_to_json = function
  | Exited c -> Json.Obj [ ("kind", Json.String "exit"); ("code", Json.Int c) ]
  | Signaled s ->
      Json.Obj [ ("kind", Json.String "signal"); ("signal", Json.Int s) ]
  | Timed_out -> Json.Obj [ ("kind", Json.String "timeout") ]
  | Bad_output msg ->
      Json.Obj
        [ ("kind", Json.String "bad-output"); ("message", Json.String msg) ]

let failure_of_json ~path json =
  let ( let* ) = Result.bind in
  let* kind = Json.get_string ~path "kind" json in
  match kind with
  | "exit" ->
      let* code = Json.get_int ~path "code" json in
      Ok (Exited code)
  | "signal" ->
      let* s = Json.get_int ~path "signal" json in
      Ok (Signaled s)
  | "timeout" -> Ok Timed_out
  | "bad-output" ->
      let* msg = Json.get_string ~path "message" json in
      Ok (Bad_output msg)
  | k ->
      Json.decode_error ~path:(path @ [ "kind" ])
        (Printf.sprintf "unknown failure kind %S" k)

let attempt_to_json a =
  Json.Obj
    [ ("duration_s", Json.Float a.duration_s);
      ("backoff_s", Json.Float a.backoff_s);
      ( "outcome",
        match a.outcome with
        | None -> Json.Null
        | Some f -> failure_to_json f ) ]

let attempt_of_json ~path json =
  let ( let* ) = Result.bind in
  let* duration_s = Json.get_float ~path "duration_s" json in
  let* backoff_s = Json.get_float ~path "backoff_s" json in
  let* outcome_json = Json.get_field ~path "outcome" json in
  let* outcome =
    match outcome_json with
    | Json.Null -> Ok None
    | f ->
        let* f = failure_of_json ~path:(path @ [ "outcome" ]) f in
        Ok (Some f)
  in
  Ok { duration_s; backoff_s; outcome }

let log_to_json (l : worker_log) =
  Json.Obj
    [ ("shard", Json.Int l.shard);
      ("files", Json.List (List.map (fun f -> Json.String f) l.files));
      ("status", Json.String (if l.report = None then "failed" else "ok"));
      ("attempts", Json.Int l.attempts);
      ("failures", Json.List (List.map failure_to_json l.failures));
      ("attempt_log", Json.List (List.map attempt_to_json l.attempt_log));
      ("wall_s", Json.Float l.wall_s) ]

let to_json t =
  Json.Obj
    [ ("workers", Json.Int t.workers);
      ("timeout_s", Json.Float t.timeout_s);
      ("retries", Json.Int t.retries);
      ("corpus", Json.List (List.map (fun l -> Json.String l) t.corpus));
      ("aggregate", Batch.report_to_json t.aggregate);
      ( "per_shard",
        Json.List (List.map Batch.report_to_json (per_shard t)) );
      ( "failed_shards",
        Json.List (List.map (fun i -> Json.Int i) (failed_shards t)) );
      ("fleet", Json.List (List.map log_to_json t.logs)) ]

let log_of_json ~path json =
  let ( let* ) = Result.bind in
  let* shard = Json.get_int ~path "shard" json in
  let* files = Json.get_list ~path "files" Json.decode_string json in
  let* status = Json.get_string ~path "status" json in
  let* ok =
    match status with
    | "ok" -> Ok true
    | "failed" -> Ok false
    | s ->
        Json.decode_error ~path:(path @ [ "status" ])
          (Printf.sprintf "unknown status %S" s)
  in
  let* attempts = Json.get_int ~path "attempts" json in
  let* failures = Json.get_list ~path "failures" failure_of_json json in
  let* attempt_log = Json.get_list ~path "attempt_log" attempt_of_json json in
  let* wall_s = Json.get_float ~path "wall_s" json in
  (* the per-shard report is carried in the top-level per_shard list and
     re-attached by of_json below *)
  Ok (ok, { shard; files; attempts; failures; attempt_log; wall_s; report = None })

let of_json ?(path = []) json =
  let ( let* ) = Result.bind in
  let* workers = Json.get_int ~path "workers" json in
  let* timeout_s = Json.get_float ~path "timeout_s" json in
  let* retries = Json.get_int ~path "retries" json in
  let* corpus = Json.get_list ~path "corpus" Json.decode_string json in
  let* aggregate_json = Json.get_field ~path "aggregate" json in
  let* aggregate =
    Batch.report_of_json ~path:(path @ [ "aggregate" ]) aggregate_json
  in
  let* reports =
    Json.get_list ~path "per_shard"
      (fun ~path x -> Batch.report_of_json ~path x)
      json
  in
  let* tagged_logs = Json.get_list ~path "fleet" log_of_json json in
  (* zip the surviving reports (shard order) back onto the "ok" logs *)
  let rec attach acc reports = function
    | [] ->
        if reports = [] then Ok (List.rev acc)
        else
          Json.decode_error ~path:(path @ [ "per_shard" ])
            "more reports than surviving workers"
    | (true, log) :: rest -> (
        match reports with
        | r :: reports -> attach ({ log with report = Some r } :: acc) reports rest
        | [] ->
            Json.decode_error ~path:(path @ [ "per_shard" ])
              "fewer reports than surviving workers")
    | (false, log) :: rest -> attach (log :: acc) reports rest
  in
  let* logs = attach [] reports tagged_logs in
  Ok { workers; timeout_s; retries; corpus; aggregate; logs }

(* supervision aggregates that are deterministic for a given corpus,
   fault spec and backoff schedule: attempts beyond the first, and the
   total backoff delay that was scheduled (computed from the exponential
   schedule, not measured — rounded to whole microseconds so the float
   repr is byte-stable) *)
let retries_used t =
  List.fold_left
    (fun acc (l : worker_log) -> acc + max 0 (l.attempts - 1))
    0 t.logs

let backoff_total_s t =
  let total =
    List.fold_left
      (fun acc (l : worker_log) ->
        List.fold_left
          (fun acc (a : attempt) -> acc +. a.backoff_s)
          acc l.attempt_log)
      0.0 t.logs
  in
  Float.round (total *. 1e6) /. 1e6

(* timing-free, so `schedtool fleet` stdout is byte-stable across
   --workers / --retries for a fault-free corpus; the supervision fields
   are deterministic (see above), not wall-clock measurements *)
let summary_to_json t =
  let a = t.aggregate in
  Json.Obj
    [ ("corpus", Json.List (List.map (fun l -> Json.String l) t.corpus));
      ("blocks", Json.Int a.Batch.blocks);
      ("insns", Json.Int a.Batch.insns);
      ("arcs", Json.Int a.Batch.arcs);
      ("original_cycles", Json.Int a.Batch.original_cycles);
      ("scheduled_cycles", Json.Int a.Batch.scheduled_cycles);
      ("stalls", Json.Int a.Batch.stalls);
      ( "failed_shards",
        Json.List (List.map (fun i -> Json.Int i) (failed_shards t)) );
      ("retries_used", Json.Int (retries_used t));
      ("backoff_s", Json.Float (backoff_total_s t)) ]

(* ------------------------------------------------------------------ *)
(* crash injection (test knob) *)

let sabotage_exit_code = 7

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some i -> i
      | None -> default)
  | None -> default

let maybe_sabotage () =
  match Sys.getenv_opt "DAGSCHED_WORKER_FAIL" with
  | None | Some "" -> ()
  | Some spec -> (
      let attempt = env_int "DAGSCHED_WORKER_ATTEMPT" 1 in
      let shard = env_int "DAGSCHED_WORKER_SHARD" 0 in
      let mode, upto, target =
        match String.split_on_char ':' spec with
        | [ m; n ] -> (m, int_of_string_opt n, None)
        | [ m; n; s ] -> (m, int_of_string_opt n, int_of_string_opt s)
        | _ -> (spec, None, None)
      in
      let applies =
        (match upto with Some n -> attempt <= n | None -> false)
        && match target with Some t -> t = shard | None -> true
      in
      if applies then
        match mode with
        | "exit" -> exit sabotage_exit_code
        | "truncate" ->
            (* half a report: parses as garbage, exercises Bad_output *)
            print_string "{\"domains\": 1, \"blocks\": ";
            exit 0
        | "hang" ->
            (* far past any sane timeout; the orchestrator must kill us.
               Leave a last gasp in the log stream first — the whole
               point of write-through logging is that these lines
               survive the SIGKILL that is about to arrive. *)
            Ds_obs.Log.log Ds_obs.Log.Warn ~scope:"worker"
              ~fields:
                [ ("mode", Ds_obs.Json.String "hang");
                  ("attempt", Ds_obs.Json.Int attempt) ]
              "sabotage: hanging";
            Ds_obs.Log.heartbeat ~force:true ~phase:"hang" ~done_:0 ~total:0 ();
            Unix.sleepf 3600.0;
            exit sabotage_exit_code
        | _ -> ())
