(** Parallel batch-scheduling driver: fans the per-block pipeline (build
    DAG -> static heuristic pass -> list scheduling -> verify) out across
    domains and aggregates timings and schedule statistics.  See
    batch.mli for the contract. *)

open Ds_sched

type pipeline_config = {
  algorithm : Ds_dag.Builder.algorithm;
  opts : Ds_dag.Opts.t;
  engine : Engine.config;
  verify : bool;
}

let section6 =
  {
    algorithm = Ds_dag.Builder.Table_forward;
    opts =
      { Ds_dag.Opts.default with
        Ds_dag.Opts.strategy = Ds_dag.Disambiguate.Symbolic };
    engine =
      {
        Engine.direction = Ds_heur.Dyn_state.Forward;
        mode = Engine.Winnowing;
        keys =
          [ Engine.key Ds_heur.Heuristic.Max_path_to_leaf;
            Engine.key Ds_heur.Heuristic.Max_delay_to_leaf;
            Engine.key (Ds_heur.Heuristic.Delays_to_children Ds_heur.Heuristic.Max) ];
      };
    verify = true;
  }

type result = {
  block_id : int;
  insns : int;
  dag_arcs : int;
  fingerprint : int64;
  order : int array;
  annot : Ds_heur.Annot.t;
  original_cycles : int;
  cycles : int;
  stalls : int;
  time_s : float;
}

let strip_timing r =
  ( r.block_id, r.insns, r.dag_arcs, r.fingerprint, r.order, r.annot,
    r.original_cycles, r.cycles, r.stalls )

exception Invalid_schedule of int * string

let heuristics_of config =
  List.map (fun k -> k.Engine.heuristic) config.engine.Engine.keys

(* live progress: when heartbeats are armed (fleet workers, --progress)
   each finished block ticks a process-wide counter that Log.heartbeat
   rate-limits into the log stream *)
let hb_done = Atomic.make 0
let hb_total = Atomic.make 0

let hb_start n =
  if Ds_obs.Log.heartbeat_enabled () then (
    Atomic.set hb_done 0;
    Atomic.set hb_total n)

let hb_tick () =
  if Ds_obs.Log.heartbeat_enabled () then
    let d = 1 + Atomic.fetch_and_add hb_done 1 in
    Ds_obs.Log.heartbeat ~phase:"block" ~done_:d ~total:(Atomic.get hb_total) ()

let run_block config block =
  (* phase spans (dag_build/heur_static/schedule/verify) are no-ops
     unless --trace enabled the recorder; heur_dynamic is recorded
     inside Engine.run as an aggregate.  Resource.with_phase charges the
     same boundaries with GC/heap deltas when --resource is on. *)
  let span name f =
    Ds_obs.Trace.with_span ~cat:"pipeline"
      ~args:[ ("block", Ds_obs.Json.Int block.Ds_cfg.Block.id) ]
      name
      (fun () -> Ds_obs.Resource.with_phase name f)
  in
  let time_s, (dag, annot, sched) =
    Ds_util.Stats.time_runs ~runs:1 (fun () ->
        let dag =
          Ds_obs.Trace.with_span ~cat:"pipeline"
            ~args:
              [ ("block", Ds_obs.Json.Int block.Ds_cfg.Block.id);
                ( "builder",
                  Ds_obs.Json.String
                    (Ds_dag.Builder.to_string config.algorithm) ) ]
            "dag_build"
            (fun () ->
              Ds_obs.Resource.with_phase
                ~detail:(Ds_dag.Builder.to_string config.algorithm)
                "dag_build"
                (fun () ->
                  Ds_dag.Builder.build config.algorithm config.opts block))
        in
        let annot =
          span "heur_static" (fun () ->
              Ds_heur.Static_pass.compute_for (heuristics_of config) dag)
        in
        let order = span "schedule" (fun () -> Engine.run config.engine ~annot dag) in
        let sched = Schedule.make dag order in
        if config.verify then
          span "verify" (fun () ->
              match Verify.check sched with
              | Ok () -> ()
              | Error v ->
                  raise
                    (Invalid_schedule
                       (block.Ds_cfg.Block.id, Verify.violation_to_string v)));
        (dag, annot, sched))
  in
  hb_tick ();
  { block_id = block.Ds_cfg.Block.id;
    insns = Ds_cfg.Block.length block;
    dag_arcs = Ds_dag.Dag.n_arcs dag;
    fingerprint = Ds_dag.Dag.fingerprint dag;
    order = sched.Schedule.order;
    annot;
    original_cycles = Schedule.original_cycles sched;
    cycles = Schedule.cycles sched;
    stalls = Schedule.stalls sched;
    time_s }

let resolve_domains = function
  | Some d -> max 1 d
  | None -> Ds_util.Pool.recommended ()

let resolve_chunk = function
  | Some c -> max 1 c
  | None -> Ds_util.Pool.default_chunk

let log_start config blocks =
  Ds_obs.Log.log Ds_obs.Log.Debug ~scope:"batch"
    ~fields:
      [ ("blocks", Ds_obs.Json.Int (List.length blocks));
        ( "builder",
          Ds_obs.Json.String (Ds_dag.Builder.to_string config.algorithm) ) ]
    "starting batch"

(* ~64-block chunks per pool task (Pool.default_chunk) cut dispatch
   bookkeeping — deque traffic, queue_wait spans — by the chunk factor
   while leaving plenty of tasks to balance across domains via steals;
   results and reports are chunk-size-invariant (differential-tested) *)
let run_on ~pool ?chunk config blocks =
  let chunk = resolve_chunk chunk in
  log_start config blocks;
  hb_start (List.length blocks);
  Ds_util.Pool.map_on pool ~chunk (run_block config) blocks

let run ?domains ?chunk config blocks =
  let domains = resolve_domains domains in
  let chunk = resolve_chunk chunk in
  log_start config blocks;
  hb_start (List.length blocks);
  Ds_util.Pool.map ~domains ~chunk (run_block config) blocks

type report = {
  domains : int;
  blocks : int;
  insns : int;
  arcs : int;
  original_cycles : int;
  scheduled_cycles : int;
  stalls : int;
  wall_s : float;
  block_s_mean : float;
  block_s_max : float;
}

let report ~domains ~wall_s results =
  let times = Ds_util.Stats.create () in
  let insns = ref 0 and arcs = ref 0 in
  let before = ref 0 and after = ref 0 and stalls = ref 0 in
  List.iter
    (fun r ->
      Ds_util.Stats.add times r.time_s;
      insns := !insns + r.insns;
      arcs := !arcs + r.dag_arcs;
      before := !before + r.original_cycles;
      after := !after + r.cycles;
      stalls := !stalls + r.stalls)
    results;
  { domains; blocks = List.length results; insns = !insns; arcs = !arcs;
    original_cycles = !before; scheduled_cycles = !after; stalls = !stalls;
    wall_s;
    block_s_mean = Ds_util.Stats.mean times;
    block_s_max = Ds_util.Stats.max_value times }

(* Per-shard means weighted by block count reconstruct the corpus-level
   mean exactly up to rounding (mean_i * n_i recovers each shard's sum). *)
let report_merge ~domains ?wall_s reports =
  let blocks = ref 0 and insns = ref 0 and arcs = ref 0 in
  let before = ref 0 and after = ref 0 and stalls = ref 0 in
  let walls = ref 0.0 and time_sum = ref 0.0 and time_max = ref 0.0 in
  List.iter
    (fun r ->
      blocks := !blocks + r.blocks;
      insns := !insns + r.insns;
      arcs := !arcs + r.arcs;
      before := !before + r.original_cycles;
      after := !after + r.scheduled_cycles;
      stalls := !stalls + r.stalls;
      walls := !walls +. r.wall_s;
      time_sum := !time_sum +. (r.block_s_mean *. float_of_int r.blocks);
      if r.block_s_max > !time_max then time_max := r.block_s_max)
    reports;
  let wall_s = match wall_s with Some w -> w | None -> !walls in
  { domains; blocks = !blocks; insns = !insns; arcs = !arcs;
    original_cycles = !before; scheduled_cycles = !after; stalls = !stalls;
    wall_s;
    block_s_mean =
      (if !blocks = 0 then 0.0 else !time_sum /. float_of_int !blocks);
    block_s_max = !time_max }

(* The pool lives outside the timed region: wall_s covers scheduling
   work only, not domain spawn/join, so --jobs comparisons are fair. *)
let run_with_report ?domains ?chunk config blocks =
  let domains = resolve_domains domains in
  let pool = Ds_util.Pool.create ~domains () in
  Fun.protect
    ~finally:(fun () -> Ds_util.Pool.shutdown pool)
    (fun () ->
      let wall_s, results =
        Ds_util.Stats.time_runs ~runs:1 (fun () ->
            run_on ~pool ?chunk config blocks)
      in
      (results, report ~domains ~wall_s results))

let float_eq a b = a = b || (Float.is_nan a && Float.is_nan b)

let report_equal a b =
  a.domains = b.domains && a.blocks = b.blocks && a.insns = b.insns
  && a.arcs = b.arcs
  && a.original_cycles = b.original_cycles
  && a.scheduled_cycles = b.scheduled_cycles
  && a.stalls = b.stalls
  && float_eq a.wall_s b.wall_s
  && float_eq a.block_s_mean b.block_s_mean
  && float_eq a.block_s_max b.block_s_max

module Json = Ds_util.Stats.Json

let report_to_json r =
  Json.Obj
    [ ("domains", Json.Int r.domains); ("blocks", Json.Int r.blocks);
      ("insns", Json.Int r.insns); ("arcs", Json.Int r.arcs);
      ("original_cycles", Json.Int r.original_cycles);
      ("scheduled_cycles", Json.Int r.scheduled_cycles);
      ("stalls", Json.Int r.stalls); ("wall_s", Json.Float r.wall_s);
      ("block_s_mean", Json.Float r.block_s_mean);
      ("block_s_max", Json.Float r.block_s_max) ]

let report_of_json ?(path = []) json =
  (* get_float maps null back to nan: the writer encodes non-finite
     floats as null, so the round trip stays total (compare with
     report_equal) *)
  let int_field k = Json.get_int ~path k json in
  let float_field k = Json.get_float ~path k json in
  let ( let* ) = Result.bind in
  let* domains = int_field "domains" in
  let* blocks = int_field "blocks" in
  let* insns = int_field "insns" in
  let* arcs = int_field "arcs" in
  let* original_cycles = int_field "original_cycles" in
  let* scheduled_cycles = int_field "scheduled_cycles" in
  let* stalls = int_field "stalls" in
  let* wall_s = float_field "wall_s" in
  let* block_s_mean = float_field "block_s_mean" in
  let* block_s_max = float_field "block_s_max" in
  Ok
    { domains; blocks; insns; arcs; original_cycles; scheduled_cycles;
      stalls; wall_s; block_s_mean; block_s_max }
