(** Bounded LRU result cache, full-key-compared on lookup.  See
    cache.mli for the contract. *)

type config = { builder : string; strategy : string; model : string }

type key = {
  text_hash : int64;
  fingerprint : int64;
  config : config;
}

(* 64-bit FNV-1a *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let hash_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let hash_text s = hash_string fnv_offset s

let hash_seed = fnv_offset

let hash_fold_int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h :=
      fnv_byte !h
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
  done;
  !h

let entry_overhead = 64

type entry = {
  ekey : key;
  text : string;    (* full request text: byte-compared on lookup *)
  payload : string;
  ebytes : int;
  mutable prev : entry option;  (* toward MRU *)
  mutable next : entry option;  (* toward LRU *)
}

(* the table is addressed by the (text_hash, config) projection of the
   key — same text + config deterministically implies the same
   fingerprint, so the projection identifies the full key; the stored
   entry carries the whole thing and [find] compares text and config
   byte-for-byte before serving *)
module Addr = struct
  type t = int64 * config

  let equal (h1, c1) (h2, c2) = Int64.equal h1 h2 && c1 = c2

  let hash (h, c) =
    Hashtbl.hash (Int64.to_int h, c.builder, c.strategy, c.model)
end

module Tbl = Hashtbl.Make (Addr)

type t = {
  max_entries : int;
  max_bytes : int;
  table : entry Tbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable entries : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable rejects : int;
}

(* metrics registry counters (gated: no-ops unless --metrics/--trace
   enabled the registry); cache.bytes and cache.entries are gauges
   maintained by deltas *)
let m_hits = Ds_obs.Metrics.counter "cache.hits"
let m_misses = Ds_obs.Metrics.counter "cache.misses"
let m_evictions = Ds_obs.Metrics.counter "cache.evictions"
let m_bytes = Ds_obs.Metrics.counter "cache.bytes"
let m_entries = Ds_obs.Metrics.counter "cache.entries"

let create ?(max_entries = 4096) ?(max_bytes = 256 * 1024 * 1024) () =
  { max_entries = max 1 max_entries;
    max_bytes = max 1 max_bytes;
    table = Tbl.create 64;
    mru = None; lru = None;
    entries = 0; bytes = 0;
    hits = 0; misses = 0; evictions = 0; rejects = 0 }

let max_entries t = t.max_entries
let max_bytes t = t.max_bytes

let addr_of e = (e.ekey.text_hash, e.ekey.config)

(* ---------------- intrusive recency list ---------------- *)

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

(* ---------------- selfcheck ---------------- *)

let selfcheck t =
  let ( let* ) = Result.bind in
  (* walk MRU->LRU checking back links, table agreement and uniqueness *)
  let rec walk n bytes seen prev = function
    | None ->
        let tail_ok =
          match (prev, t.lru) with
          | None, None -> true
          | Some p, Some l -> p == l
          | _ -> false
        in
        if tail_ok then Ok (n, bytes)
        else Error "lru pointer does not match list tail"
    | Some e ->
        let addr = addr_of e in
        let* () =
          if List.mem addr seen then Error "duplicate address in recency list"
          else Ok ()
        in
        let* () =
          match (e.prev, prev) with
          | None, None -> Ok ()
          | Some a, Some b when a == b -> Ok ()
          | _ -> Error "broken prev link in recency list"
        in
        let* () =
          match Tbl.find_opt t.table addr with
          | Some e' when e' == e -> Ok ()
          | Some _ -> Error "recency list entry shadowed in table"
          | None -> Error "recency list entry missing from table"
        in
        walk (n + 1) (bytes + e.ebytes) (addr :: seen) (Some e) e.next
  in
  let* n, bytes = walk 0 0 [] None t.mru in
  if n <> t.entries then Error "entry count does not match list length"
  else if n <> Tbl.length t.table then
    Error "table size does not match list length"
  else if bytes <> t.bytes then Error "byte total does not match entries"
  else if t.entries > t.max_entries then Error "entry bound violated"
  else if t.bytes > t.max_bytes then Error "byte bound violated"
  else Ok ()

(* strict mode: re-run [selfcheck] after every mutation and require the
   Metrics gauge mirrors to equal the recomputed totals.  O(n) per
   operation, so opt-in (tests, debugging) — never the service path. *)
let strict =
  ref
    (match Sys.getenv_opt "DAGSCHED_CACHE_STRICT" with
    | Some s when s <> "" && s <> "0" -> true
    | _ -> false)

let set_strict_checks b = strict := b
let strict_checks () = !strict

let strict_check t =
  if !strict then begin
    (match selfcheck t with
    | Ok () -> ()
    | Error msg -> failwith ("Cache strict check: " ^ msg));
    (* gauge mirrors only move while the registry records, so they are
       comparable only when it is enabled (and has been for this
       cache's whole life — the strict harness's responsibility) *)
    if Ds_obs.Metrics.is_enabled () then begin
      let gb = Ds_obs.Metrics.value m_bytes in
      let ge = Ds_obs.Metrics.value m_entries in
      if gb <> t.bytes then
        failwith
          (Printf.sprintf
             "Cache strict check: cache.bytes gauge %d, recomputed %d" gb
             t.bytes);
      if ge <> t.entries then
        failwith
          (Printf.sprintf
             "Cache strict check: cache.entries gauge %d, recomputed %d" ge
             t.entries)
    end
  end

(* ---------------- operations ---------------- *)

type hit = { key : key; payload : string }

let find t ~text config =
  let result =
    let h = hash_text text in
    match Tbl.find_opt t.table (h, config) with
    | Some e when String.equal e.text text && e.ekey.config = config ->
        unlink t e;
        push_front t e;
        t.hits <- t.hits + 1;
        Ds_obs.Metrics.incr m_hits;
        Some { key = e.ekey; payload = e.payload }
    | Some _ | None ->
        (* a same-address entry whose stored text differs is a genuine
           64-bit hash collision: refuse to serve it (miss), and the
           subsequent put will replace it *)
        t.misses <- t.misses + 1;
        Ds_obs.Metrics.incr m_misses;
        None
  in
  strict_check t;
  result

let remove_entry t e =
  Tbl.remove t.table (addr_of e);
  unlink t e;
  t.entries <- t.entries - 1;
  t.bytes <- t.bytes - e.ebytes;
  Ds_obs.Metrics.add m_bytes (-e.ebytes);
  Ds_obs.Metrics.add m_entries (-1)

let evict_lru t =
  match t.lru with
  | None -> ()
  | Some e ->
      remove_entry t e;
      t.evictions <- t.evictions + 1;
      Ds_obs.Metrics.incr m_evictions

let put t ~text ~fingerprint config ~payload =
  let text_hash = hash_text text in
  let ebytes = String.length text + String.length payload + entry_overhead in
  if ebytes > t.max_bytes then t.rejects <- t.rejects + 1
  else begin
    (* replacement (same address) is not an eviction *)
    (match Tbl.find_opt t.table (text_hash, config) with
    | Some old -> remove_entry t old
    | None -> ());
    let e =
      { ekey = { text_hash; fingerprint; config }; text; payload; ebytes;
        prev = None; next = None }
    in
    Tbl.replace t.table (addr_of e) e;
    push_front t e;
    t.entries <- t.entries + 1;
    t.bytes <- t.bytes + ebytes;
    Ds_obs.Metrics.add m_bytes ebytes;
    Ds_obs.Metrics.add m_entries 1;
    while t.entries > t.max_entries || t.bytes > t.max_bytes do
      evict_lru t
    done
  end;
  strict_check t

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  evictions : int;
  rejects : int;
}

let stats (t : t) =
  { entries = t.entries; bytes = t.bytes; hits = t.hits; misses = t.misses;
    evictions = t.evictions; rejects = t.rejects }

let items t =
  let rec go acc = function
    | None -> List.rev acc
    | Some e -> go ((e.ekey, e.payload) :: acc) e.next
  in
  go [] t.mru
