(** Content-addressed schedule-result cache: a bounded LRU in front of
    the batch pipeline, so repeated traffic (millions of users
    submitting overlapping code) costs a hash plus a lookup instead of
    DAG construction, heuristic calculation and list scheduling.

    {b Key.}  A cached result is identified by the full tuple
    (block text hash, {!Ds_dag.Dag.fingerprint}, builder, strategy,
    machine model).  The text hash (64-bit FNV-1a over the request's
    assembly text) addresses the table; the DAG fingerprint — computed
    once, on the miss that populated the entry — pins the cached
    schedule to the exact dependence structure it was computed from.
    Collision safety is by construction, not by probability: every
    entry stores the {e entire} block text, and a lookup compares it
    (plus builder/strategy/model) byte-for-byte before serving, so no
    hash or fingerprint collision of any kind can ever return a wrong
    schedule.

    {b Bounds.}  The cache holds at most [max_entries] entries and
    [max_bytes] payload bytes (text + payload + a fixed per-entry
    overhead); inserting past either bound evicts least-recently-used
    entries until both hold again.  An entry that alone exceeds
    [max_bytes] is rejected outright (counted in [stats.rejects], no
    eviction churn).

    {b Counters.}  Exact values live in {!stats} (always on — they are
    plain ints, the serve protocol's [stats] op reads them).  The same
    events also bump the {!Ds_obs.Metrics} registry
    ([cache.hits]/[cache.misses]/[cache.evictions], plus the occupancy
    gauges [cache.bytes]/[cache.entries] maintained by deltas) when
    metrics are enabled, so [--metrics] tables, the serve daemon's
    [metrics] op and shipped fleet snapshots see them; gated off, they
    cost one atomic read like every other instrumentation site.

    Not thread-safe: the serve daemon services requests sequentially
    (its concurrency lives inside the request, on the domain pool). *)

(** The pipeline-configuration part of the key, as canonical names
    (exactly the [schedtool] CLI spellings). *)
type config = { builder : string; strategy : string; model : string }

type key = {
  text_hash : int64;   (** FNV-1a over the block text *)
  fingerprint : int64; (** {!Ds_dag.Dag.fingerprint}, folded over blocks *)
  config : config;
}

(** 64-bit FNV-1a over a string — the text-hash half of the key. *)
val hash_text : string -> int64

(** The FNV-1a offset basis — the seed for incremental hashing. *)
val hash_seed : int64

(** [hash_fold_int64 h v] folds the 8 little-endian bytes of [v] into
    [h] — how serve combines per-block {!Ds_dag.Dag.fingerprint}s into
    one request-level fingerprint. *)
val hash_fold_int64 : int64 -> int64 -> int64

(** Fixed accounting overhead charged per entry on top of text and
    payload bytes. *)
val entry_overhead : int

type t

(** [create ~max_entries ~max_bytes ()] — both bounds clamped to
    [>= 1].  Defaults: 4096 entries, 256 MiB. *)
val create : ?max_entries:int -> ?max_bytes:int -> unit -> t

val max_entries : t -> int
val max_bytes : t -> int

type hit = { key : key; payload : string }

(** [find t ~text config] — a hit moves the entry to most-recently-used
    position and returns the stored key (including the fingerprint
    recorded at insert) and payload.  Compares the stored full text and
    config before serving.  Counts exactly one hit or one miss. *)
val find : t -> text:string -> config -> hit option

(** [put t ~text ~fingerprint config payload] inserts (or replaces —
    replacement is not an eviction) at most-recently-used position,
    then evicts from the least-recently-used end until both bounds
    hold.  Counts nothing toward hits/misses. *)
val put : t -> text:string -> fingerprint:int64 -> config -> payload:string -> unit

(** Exact, always-on counters.  [bytes]/[entries] are current
    occupancy; the rest are monotone totals. *)
type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  evictions : int;
  rejects : int;
}

val stats : t -> stats

(** Entries in recency order, most recently used first — the exact
    eviction order reversed.  For tests and introspection. *)
val items : t -> (key * string) list

(** Structural invariants (list/table agreement, byte accounting,
    bounds): [Error] names the first violation.  Test hook. *)
val selfcheck : t -> (unit, string) result

(** {1 Strict checks}

    With strict checks on, every mutation path ([find] hit or miss,
    [put] insert/replace/evict/reject) re-runs {!selfcheck} and — when
    the metrics registry is enabled — requires the mirrored
    [cache.bytes]/[cache.entries] gauges to equal the recomputed
    totals, raising [Failure] naming the first divergence.  O(n) per
    operation, so opt-in: the randomized regression harness turns it
    on, the service path never does.  The gauge comparison presumes
    one live cache with metrics enabled for its whole life (the
    gauges are process-wide).  Also armed by the
    [DAGSCHED_CACHE_STRICT] environment variable (any value but
    ["" ]/["0"]). *)

val set_strict_checks : bool -> unit
val strict_checks : unit -> bool
