(** Scheduling as a service: a resident daemon on a Unix socket, with
    the content-addressed {!Cache} in front of the batch pipeline.

    {b Protocol.}  One request per connection: the client connects,
    sends one length-prefixed JSON frame ({!Ds_obs.Frame}), reads one
    response frame, and the connection closes.  Connections are
    serviced sequentially — a request's parallelism lives inside it, on
    the daemon's resident domain pool ({!Batch.run_on} reuse) — so N
    concurrent clients queue on the listen backlog and every response
    is deterministic.  Schemas are documented in docs/FORMAT.md
    ("serve protocol").

    Requests: [{"op": "ping"}], [{"op": "stats"}], or a schedule
    request [{"op": "schedule", "block": <asm text>, "builder": ...,
    "strategy": ..., "model": ...}] ([op] defaults to ["schedule"];
    builder/strategy/model default to the CLI defaults).  A schedule
    response carries the request's DAG fingerprint, the timing-free
    batch report and the per-block schedules; the {e entire} response
    text is what the cache stores, so a warm response is byte-identical
    to the cold response that populated it (pinned by the differential
    suite).  Every failure — unparseable JSON, bad fields, unparseable
    assembly, an exception out of the pipeline (including the
    [DAGSCHED_SERVE_FAIL] injection knob) — answers a typed JSON error
    and leaves the daemon alive; only frame-level damage (malformed or
    oversized header, peer death) additionally drops that connection.

    {b Drain.}  SIGINT sets a flag: the in-flight request finishes and
    its response is written, the listener closes, the socket file is
    unlinked, and {!run} returns [130] for the CLI to [exit] with —
    the same discipline as the fleet's Ctrl-C path. *)

(** {1 Crash injection} *)

(** [DAGSCHED_SERVE_FAIL=raise:n] makes the first [n] schedule-request
    pipelines raise — the daemon must answer a typed [internal] error
    and keep serving (regression-tested like the fleet's
    [DAGSCHED_WORKER_FAIL]). *)
val fail_env : string

(** {1 Requests and responses (the codec is exposed for tests)} *)

type request =
  | Ping
  | Stats
  | Metrics
  | Schedule of {
      text : string;
      builder : Ds_dag.Builder.algorithm;
      strategy : Ds_dag.Disambiguate.t;
      model : Ds_machine.Latency.t;
    }

(** Total over arbitrary JSON; typed path errors name the offending
    field (unknown [op], unknown builder/strategy/model, missing
    [block], wrong types). *)
val request_of_json :
  ?path:string list ->
  Ds_obs.Json.t ->
  (request, Ds_obs.Json.error) result

val request_to_json : request -> Ds_obs.Json.t

(** Error kinds a response can carry:
    ["parse"] (request JSON does not parse),
    ["bad-request"] (request shape/fields),
    ["block-parse"] (assembly text does not parse),
    ["oversized"] / ["malformed-frame"] (frame layer, connection drops),
    ["internal"] (pipeline exception; the daemon survives). *)
type error_kind =
  | Parse
  | Bad_request
  | Block_parse
  | Oversized
  | Malformed_frame
  | Internal

val error_kind_to_string : error_kind -> string

(** [{"status": "error", "error": {"kind": ..., "message": ..., "id":
    ...}}] as text, framed and sent as-is.  [?id] is the request id —
    every error the daemon emits carries one, for correlation with the
    access log and trace spans.  Ok responses never carry an id: a
    schedule response is the cache payload and must stay byte-identical
    across requests and daemon restarts. *)
val error_response : ?id:string -> error_kind -> string -> string

(** {1 Daemon state} *)

type t

(** [create ~domains ~chunk ~max_entries ~max_bytes ?access ()] builds
    the resident state: the domain pool (shared by every request), the
    result cache, the windowed request metrics and the request-id
    source (a fresh per-start nonce crossed with a monotonic counter).
    [?access] attaches a JSONL access-log sink — one line per request
    through {!Ds_obs.Log.Sink} (caller closes it).  Defaults: 1
    domain, default chunk, cache defaults, no access log. *)
val create :
  ?domains:int ->
  ?chunk:int ->
  ?max_entries:int ->
  ?max_bytes:int ->
  ?access:Ds_obs.Log.Sink.t ->
  unit ->
  t

(** Shut the resident pool down (idempotent). *)
val destroy : t -> unit

val cache : t -> Cache.t

(** Requests served so far (any op, errors included). *)
val served : t -> int

(** The daemon's windowed request metrics (rate/errors/duration over
    the last 1s/10s/60s).  Records only while {!Ds_obs.Window} is
    enabled ({!run} enables it unless [options.service_obs] is off;
    in-process harnesses enable it themselves). *)
val window : t -> Ds_obs.Window.t

(** [handle_text t payload] is the full request->response path minus
    the wire: parse, cache lookup, pipeline on miss, encode, cache
    fill, windowed metrics, access-log line.  Mints a fresh request
    id.  Never raises.  This is what the daemon runs per frame and
    what the differential tests call in-process. *)
val handle_text : t -> string -> string

(** {1 The metrics op}

    [{"op": "metrics"}] answers a full telemetry snapshot: uptime,
    resident-set size, request total, cache occupancy and limits, the
    {!Ds_obs.Metrics} registry (when enabled; empty otherwise) and
    windowed RED stats over the last {!report_windows} seconds.
    Schema in docs/FORMAT.md ("metrics op"). *)

type metrics = {
  uptime_s : float;
  rss_kb : int;
  requests : int;
  cache_entries : int;
  cache_bytes : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_rejects : int;
  cache_max_entries : int;
  cache_max_bytes : int;
  registry : Ds_obs.Metrics.snapshot;
  windows : Ds_obs.Window.stats list;
}

(** The windows every metrics response reports, in seconds:
    [1; 10; 60]. *)
val report_windows : float list

(** Capture the snapshot an in-process harness would get from the op. *)
val metrics_of : t -> metrics

val metrics_to_json : metrics -> Ds_obs.Json.t

(** Total reader over an ok metrics {e response} object — what
    [schedtool client --metrics-text] and [schedtool top] decode. *)
val metrics_of_json :
  ?path:string list -> Ds_obs.Json.t -> (metrics, Ds_obs.Json.error) result

(** Prometheus/OpenMetrics text exposition of a snapshot
    ([dagsched_]-prefixed families; schema in docs/FORMAT.md).  Cache
    occupancy and request totals come from the exact always-on stats;
    their gated registry mirrors are dropped from the rendering rather
    than exposed twice. *)
val prometheus_of_metrics : metrics -> string

(** {1 The daemon} *)

type options = {
  domains : int;          (** pool size (determinism: part of reports) *)
  chunk : int;            (** blocks per pool task; 0 = default *)
  max_entries : int;      (** cache entry bound *)
  max_bytes : int;        (** cache byte bound *)
  max_frame : int;        (** request frame cap, bytes *)
  read_timeout_s : float; (** per-connection receive timeout *)
  backlog : int;          (** listen(2) backlog — queued clients *)
  service_obs : bool;
  (** enable {!Ds_obs.Window} so the metrics op answers live windowed
      quantiles (default [true]; [--no-service-obs] turns it off for
      overhead baselines).  Never affects response bytes. *)
  access_log : string option;
  (** JSONL access-log path (truncated at start; [None] = no access
      log).  Unopenable path: [run] returns 125. *)
}

val default_options : options

(** [run ~options ~socket ()] binds [socket] (unlinking a stale file
    first), then serves until SIGINT, then drains and returns the
    process exit code (130 after a drain; 125 if the socket cannot be
    bound, with the reason on stderr).  Installs a SIGINT handler for
    its lifetime and restores the previous one on return. *)
val run : ?options:options -> socket:string -> unit -> int

(** {1 Client} *)

(** [request_once ~socket payload] performs one whole protocol exchange
    — connect, send one frame, read one frame, close — and returns the
    response text.  [Error] carries a human-readable reason (no daemon,
    write failure, frame damage).  This is [schedtool client], the
    bench load generator and the over-the-wire tests. *)
val request_once :
  ?max_frame:int -> socket:string -> string -> (string, string) result
