(** Parallel batch-scheduling driver.

    Each basic block's pipeline — DAG construction, intermediate
    heuristic calculation, list scheduling, verification — is independent
    of every other block's, so a batch fans out across domains on a
    {!Ds_util.Pool} and still returns results in input order.  Running
    with [~domains:1] and [~domains:N] is guaranteed to produce identical
    schedules, annotations and statistics (the differential test layer in
    [test/test_driver.ml] pins this down); only the wall-clock fields
    differ. *)

(** One per-block pipeline: which builder, its options, and the
    scheduling-engine configuration.  [verify] re-checks every schedule
    against the DAG (cheap, and what the paper's drivers did). *)
type pipeline_config = {
  algorithm : Ds_dag.Builder.algorithm;
  opts : Ds_dag.Opts.t;
  engine : Ds_sched.Engine.config;
  verify : bool;
}

(** The paper's §6 measurement pipeline: table-building forward
    construction, symbolic memory disambiguation, a simple forward
    scheduling pass driven by max path to leaf / max delay to leaf / max
    delay to child, verification on. *)
val section6 : pipeline_config

(** Per-block outcome.  Everything except [time_s] is deterministic and
    identical across domain counts. *)
type result = {
  block_id : int;
  insns : int;
  dag_arcs : int;
  fingerprint : int64;          (* Ds_dag.Dag.fingerprint of the DAG —
                                   the serve cache's structural key *)
  order : int array;            (* node ids in scheduled order *)
  annot : Ds_heur.Annot.t;      (* the static heuristic annotations *)
  original_cycles : int;        (* simulated cycles, original order *)
  cycles : int;                 (* simulated cycles, scheduled order *)
  stalls : int;
  time_s : float;               (* this block's pipeline wall clock *)
}

(** The deterministic part of a result (drops [time_s]) — what the
    differential tests compare. *)
val strip_timing :
  result ->
  int * int * int * int64 * int array * Ds_heur.Annot.t * int * int * int

(** Raised (from the submitting domain) when [verify] finds an invalid
    schedule; carries the block id and the violation. *)
exception Invalid_schedule of int * string

(** [run ?domains ?chunk config blocks] schedules every block, fanning
    out over [domains] workers (default {!Ds_util.Pool.recommended}) in
    chunks of [chunk] blocks per pool task (default
    {!Ds_util.Pool.default_chunk}; values < 1 are clamped to 1).
    Results are in input order, and identical for every domain count
    and chunk size — only dispatch bookkeeping changes (the
    [pool.queue_wait_us] histogram and [queue_wait]/[task_run] spans
    are per chunk).  The differential test layer in
    [test/test_driver.ml] pins the chunk-size invariance. *)
val run :
  ?domains:int -> ?chunk:int -> pipeline_config -> Ds_cfg.Block.t list ->
  result list

(** [run_on ~pool config blocks] is {!run} on an existing pool, which
    stays usable afterwards — this is how a sharded corpus reuses one
    set of worker domains across many batches ({!Shard}). *)
val run_on :
  pool:Ds_util.Pool.t -> ?chunk:int -> pipeline_config ->
  Ds_cfg.Block.t list -> result list

(** Batch aggregate: totals plus per-block timing statistics. *)
type report = {
  domains : int;
  blocks : int;
  insns : int;
  arcs : int;
  original_cycles : int;
  scheduled_cycles : int;
  stalls : int;
  wall_s : float;               (* whole-batch wall clock *)
  block_s_mean : float;         (* mean per-block pipeline seconds *)
  block_s_max : float;
}

val report : domains:int -> wall_s:float -> result list -> report

(** [report_merge ~domains reports] folds per-shard reports into one
    corpus-level aggregate: counters add, [block_s_mean] is the
    block-count-weighted mean, [block_s_max] the max.  [wall_s] defaults
    to the sum of the shard walls (right for a fleet run sequentially
    over one shared pool); pass the measured corpus wall to override.
    Merging [[]] yields the all-zero report. *)
val report_merge : domains:int -> ?wall_s:float -> report list -> report

(** {!run} plus the aggregate, timing the whole batch.  The worker pool
    is created (and torn down) {e outside} the timed region, so
    [wall_s] measures scheduling work, not domain spawn cost. *)
val run_with_report :
  ?domains:int -> ?chunk:int -> pipeline_config -> Ds_cfg.Block.t list ->
  result list * report

(** Field-wise report equality with NaN-tolerant float comparison (two
    NaN fields are equal).  Use this — not structural [=], under which a
    report with any NaN field is unequal to itself — to validate a JSON
    round trip. *)
val report_equal : report -> report -> bool

(** JSON round trip for the report (the [BENCH_parallel.json] /
    [schedtool batch --json] schema, documented in docs/FORMAT.md).
    The writer encodes non-finite float fields as [null]; the reader
    maps [null] float fields back to [nan], so the round trip is total
    up to {!report_equal}. *)
val report_to_json : report -> Ds_util.Stats.Json.t

(** The reader is total over arbitrary JSON values: malformed, truncated
    or wrong-schema input yields a typed {!Ds_util.Stats.Json.error}
    naming the offending field — no exception escapes.  [path] prefixes
    the error path when the report is embedded in a larger document
    (e.g. a {!Shard} merged report's [aggregate] field). *)
val report_of_json :
  ?path:string list ->
  Ds_util.Stats.Json.t ->
  (report, Ds_util.Stats.Json.error) Stdlib.result
