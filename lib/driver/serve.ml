(** Scheduling-as-a-service daemon with the content-addressed result
    cache in front of the batch pipeline.  See serve.mli for the
    contract and docs/FORMAT.md for the wire schemas. *)

module Json = Ds_obs.Json
module Frame = Ds_obs.Frame

let fail_env = "DAGSCHED_SERVE_FAIL"

(* ------------------------------------------------------------------ *)
(* requests *)

type request =
  | Ping
  | Stats
  | Metrics
  | Schedule of {
      text : string;
      builder : Ds_dag.Builder.algorithm;
      strategy : Ds_dag.Disambiguate.t;
      model : Ds_machine.Latency.t;
    }

(* the CLI defaults (schedtool build/batch): table-forward,
   base-offset, simple-risc *)
let default_builder = Ds_dag.Builder.Table_forward
let default_strategy = Ds_dag.Disambiguate.Base_offset
let default_model = Ds_machine.Latency.simple_risc

let opt_field ~path name decode json =
  match Json.member name json with
  | None -> Ok None
  | Some v -> Result.map Option.some (decode ~path:(path @ [ name ]) v)

let decode_name ~what of_string ~path v =
  match v with
  | Json.String s -> (
      match of_string s with
      | Some x -> Ok x
      | None ->
          Json.decode_error ~path (Printf.sprintf "unknown %s %S" what s))
  | other ->
      Json.decode_error ~path
        (Printf.sprintf "expected a %s name, found %s" what
           (Json.type_name other))

let request_of_json ?(path = []) json =
  let ( let* ) = Result.bind in
  match json with
  | Json.Obj _ -> (
      let* op =
        match Json.member "op" json with
        | None -> Ok "schedule"
        | Some (Json.String s) -> Ok s
        | Some other ->
            Json.decode_error ~path:(path @ [ "op" ])
              (Printf.sprintf "expected a string, found %s"
                 (Json.type_name other))
      in
      match op with
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "metrics" -> Ok Metrics
      | "schedule" ->
          let* text = Json.get_string ~path "block" json in
          let* builder =
            opt_field ~path "builder"
              (decode_name ~what:"builder" Ds_dag.Builder.of_string)
              json
          in
          let* strategy =
            opt_field ~path "strategy"
              (decode_name ~what:"strategy" Ds_dag.Disambiguate.of_string)
              json
          in
          let* model =
            opt_field ~path "model"
              (decode_name ~what:"model" Ds_machine.Latency.by_name)
              json
          in
          Ok
            (Schedule
               { text;
                 builder = Option.value builder ~default:default_builder;
                 strategy = Option.value strategy ~default:default_strategy;
                 model = Option.value model ~default:default_model })
      | op ->
          Json.decode_error ~path:(path @ [ "op" ])
            (Printf.sprintf "unknown op %S" op))
  | other ->
      Json.decode_error ~path
        (Printf.sprintf "expected a request object, found %s"
           (Json.type_name other))

let request_to_json = function
  | Ping -> Json.Obj [ ("op", Json.String "ping") ]
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Metrics -> Json.Obj [ ("op", Json.String "metrics") ]
  | Schedule { text; builder; strategy; model } ->
      Json.Obj
        [ ("op", Json.String "schedule");
          ("block", Json.String text);
          ("builder", Json.String (Ds_dag.Builder.to_string builder));
          ("strategy", Json.String (Ds_dag.Disambiguate.to_string strategy));
          ("model", Json.String model.Ds_machine.Latency.name) ]

(* ------------------------------------------------------------------ *)
(* responses *)

type error_kind =
  | Parse
  | Bad_request
  | Block_parse
  | Oversized
  | Malformed_frame
  | Internal

let error_kind_to_string = function
  | Parse -> "parse"
  | Bad_request -> "bad-request"
  | Block_parse -> "block-parse"
  | Oversized -> "oversized"
  | Malformed_frame -> "malformed-frame"
  | Internal -> "internal"

(* error responses carry the request id for correlation with the
   access log and trace spans; ok responses never do — a schedule
   response is the cache payload and must stay byte-identical across
   requests (and daemon restarts) *)
let error_response ?id kind message =
  Json.to_string
    (Json.Obj
       [ ("status", Json.String "error");
         ( "error",
           Json.Obj
             ([ ("kind", Json.String (error_kind_to_string kind));
                ("message", Json.String message) ]
             @ match id with
               | None -> []
               | Some id -> [ ("id", Json.String id) ]) ) ])

let fingerprint_hex fp = Printf.sprintf "%016Lx" fp

let result_to_json (r : Batch.result) =
  Json.Obj
    [ ("block_id", Json.Int r.Batch.block_id);
      ("insns", Json.Int r.Batch.insns);
      ("arcs", Json.Int r.Batch.dag_arcs);
      ("fingerprint", Json.String (fingerprint_hex r.Batch.fingerprint));
      ( "order",
        Json.List
          (Array.to_list (Array.map (fun i -> Json.Int i) r.Batch.order)) );
      ("original_cycles", Json.Int r.Batch.original_cycles);
      ("cycles", Json.Int r.Batch.cycles);
      ("stalls", Json.Int r.Batch.stalls) ]

(* ------------------------------------------------------------------ *)
(* daemon state *)

type t = {
  pool : Ds_util.Pool.t;
  domains : int;
  chunk : int;
  cache : Cache.t;
  start_s : float;
  nonce : string;       (* per-daemon-start half of every request id *)
  mutable seq : int;    (* monotonic half *)
  window : Ds_obs.Window.t;
  access : Ds_obs.Log.Sink.t option;
  mutable served : int;
  mutable fail_budget : int;  (* DAGSCHED_SERVE_FAIL=raise:n countdown *)
}

let parse_fail_budget () =
  match Sys.getenv_opt fail_env with
  | None | Some "" -> 0
  | Some spec -> (
      match String.split_on_char ':' spec with
      | [ "raise"; n ] -> (
          match int_of_string_opt n with Some n -> max 0 n | None -> 0)
      | _ -> 0)

let create ?(domains = 1) ?(chunk = 0) ?max_entries ?max_bytes ?access () =
  let domains = max 1 domains in
  let start_s = Ds_obs.Clock.now () in
  { pool = Ds_util.Pool.create ~domains ();
    domains;
    chunk = (if chunk <= 0 then Ds_util.Pool.default_chunk else chunk);
    cache = Cache.create ?max_entries ?max_bytes ();
    start_s;
    nonce =
      (* distinct across daemon starts, stable within one: two daemons
         never hand out colliding ids even at the same counter value *)
      Printf.sprintf "%08x"
        (Hashtbl.hash (start_s, Unix.getpid ()) land 0x0fffffff);
    seq = 0;
    window = Ds_obs.Window.create "serve.request";
    access;
    served = 0;
    fail_budget = parse_fail_budget () }

let destroy t = Ds_util.Pool.shutdown t.pool
let cache t = t.cache
let served t = t.served
let window t = t.window

let next_id t =
  t.seq <- t.seq + 1;
  Printf.sprintf "%s-%d" t.nonce t.seq

(* ------------------------------------------------------------------ *)
(* request handling *)

let stats_response t =
  let s = Cache.stats t.cache in
  Json.to_string
    (Json.Obj
       [ ("status", Json.String "ok");
         ("op", Json.String "stats");
         ("requests", Json.Int t.served);
         ( "cache",
           Json.Obj
             [ ("entries", Json.Int s.Cache.entries);
               ("bytes", Json.Int s.Cache.bytes);
               ("hits", Json.Int s.Cache.hits);
               ("misses", Json.Int s.Cache.misses);
               ("evictions", Json.Int s.Cache.evictions);
               ("rejects", Json.Int s.Cache.rejects) ] ) ])

let pong = Json.to_string
    (Json.Obj [ ("status", Json.String "ok"); ("op", Json.String "pong") ])

(* ------------------------------------------------------------------ *)
(* the metrics op: a full telemetry snapshot, typed both ways so
   `client --metrics-text` and `schedtool top` decode it *)

type metrics = {
  uptime_s : float;
  rss_kb : int;
  requests : int;
  cache_entries : int;
  cache_bytes : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_rejects : int;
  cache_max_entries : int;
  cache_max_bytes : int;
  registry : Ds_obs.Metrics.snapshot;
  windows : Ds_obs.Window.stats list;
}

(* the windows every metrics response answers, seconds *)
let report_windows = [ 1.0; 10.0; 60.0 ]

let metrics_of t =
  let s = Cache.stats t.cache in
  { uptime_s = Ds_obs.Clock.since t.start_s;
    rss_kb = Ds_obs.Log.rss_kb ();
    requests = t.served;
    cache_entries = s.Cache.entries;
    cache_bytes = s.Cache.bytes;
    cache_hits = s.Cache.hits;
    cache_misses = s.Cache.misses;
    cache_evictions = s.Cache.evictions;
    cache_rejects = s.Cache.rejects;
    cache_max_entries = Cache.max_entries t.cache;
    cache_max_bytes = Cache.max_bytes t.cache;
    registry = Ds_obs.Metrics.snapshot ();
    windows =
      List.map
        (fun w -> Ds_obs.Window.stats t.window ~window_s:w)
        report_windows }

let metrics_to_json m =
  Json.Obj
    [ ("status", Json.String "ok");
      ("op", Json.String "metrics");
      ("uptime_s", Json.Float m.uptime_s);
      ("rss_kb", Json.Int m.rss_kb);
      ("requests", Json.Int m.requests);
      ( "cache",
        Json.Obj
          [ ("entries", Json.Int m.cache_entries);
            ("bytes", Json.Int m.cache_bytes);
            ("hits", Json.Int m.cache_hits);
            ("misses", Json.Int m.cache_misses);
            ("evictions", Json.Int m.cache_evictions);
            ("rejects", Json.Int m.cache_rejects);
            ("max_entries", Json.Int m.cache_max_entries);
            ("max_bytes", Json.Int m.cache_max_bytes) ] );
      ("metrics", Ds_obs.Metrics.snapshot_to_json m.registry);
      ( "windows",
        Json.List (List.map Ds_obs.Window.stats_to_json m.windows) ) ]

let metrics_of_json ?(path = []) json =
  let ( let* ) = Result.bind in
  let* uptime_s = Json.get_float ~path "uptime_s" json in
  let* rss_kb = Json.get_int ~path "rss_kb" json in
  let* requests = Json.get_int ~path "requests" json in
  let* cache_json = Json.get_field ~path "cache" json in
  let cpath = path @ [ "cache" ] in
  let* cache_entries = Json.get_int ~path:cpath "entries" cache_json in
  let* cache_bytes = Json.get_int ~path:cpath "bytes" cache_json in
  let* cache_hits = Json.get_int ~path:cpath "hits" cache_json in
  let* cache_misses = Json.get_int ~path:cpath "misses" cache_json in
  let* cache_evictions = Json.get_int ~path:cpath "evictions" cache_json in
  let* cache_rejects = Json.get_int ~path:cpath "rejects" cache_json in
  let* cache_max_entries = Json.get_int ~path:cpath "max_entries" cache_json in
  let* cache_max_bytes = Json.get_int ~path:cpath "max_bytes" cache_json in
  let* registry_json = Json.get_field ~path "metrics" json in
  let* registry =
    Ds_obs.Metrics.snapshot_of_json ~path:(path @ [ "metrics" ]) registry_json
  in
  let* windows_json = Json.get_field ~path "windows" json in
  let* windows =
    match windows_json with
    | Json.List ws ->
        let rec go acc i = function
          | [] -> Ok (List.rev acc)
          | w :: rest ->
              let* s =
                Ds_obs.Window.stats_of_json
                  ~path:(path @ [ Printf.sprintf "windows[%d]" i ])
                  w
              in
              go (s :: acc) (i + 1) rest
        in
        go [] 0 ws
    | other ->
        Json.decode_error ~path:(path @ [ "windows" ])
          (Printf.sprintf "expected a list, found %s" (Json.type_name other))
  in
  Ok
    { uptime_s; rss_kb; requests; cache_entries; cache_bytes; cache_hits;
      cache_misses; cache_evictions; cache_rejects; cache_max_entries;
      cache_max_bytes; registry; windows }

let metrics_response t = Json.to_string (metrics_to_json (metrics_of t))

(* cache occupancy and request totals are exposed from the exact
   always-on stats above; the same events may also live in the gated
   registry, so drop the duplicates from its rendering *)
let registry_duplicates =
  [ "cache.hits"; "cache.misses"; "cache.evictions"; "cache.bytes";
    "cache.entries"; "serve.requests" ]

let prometheus_of_metrics m =
  let buf = Buffer.create 4096 in
  let prefix = "dagsched_" in
  let module P = Ds_obs.Prom in
  P.gauge buf ~prefix "uptime_seconds" m.uptime_s;
  P.gauge buf ~prefix "rss_kilobytes" (float_of_int m.rss_kb);
  P.counter buf ~prefix "requests" m.requests;
  P.gauge buf ~prefix "cache_entries" (float_of_int m.cache_entries);
  P.gauge buf ~prefix "cache_bytes" (float_of_int m.cache_bytes);
  P.gauge buf ~prefix "cache_entries_limit" (float_of_int m.cache_max_entries);
  P.gauge buf ~prefix "cache_bytes_limit" (float_of_int m.cache_max_bytes);
  P.counter buf ~prefix "cache_hits" m.cache_hits;
  P.counter buf ~prefix "cache_misses" m.cache_misses;
  P.counter buf ~prefix "cache_evictions" m.cache_evictions;
  P.counter buf ~prefix "cache_rejects" m.cache_rejects;
  P.snapshot buf ~prefix
    { m.registry with
      Ds_obs.Metrics.counters =
        List.filter
          (fun (name, _) -> not (List.mem name registry_duplicates))
          m.registry.Ds_obs.Metrics.counters };
  P.windows buf ~prefix m.windows;
  Buffer.contents buf

(* the cold path: full pipeline on the resident pool, then encode.  The
   response text is entirely deterministic for (text, builder, strategy,
   model, domains) — timing fields are zeroed — so it IS the cache
   payload, and a warm response is byte-identical by construction. *)
let schedule_cold t ~text ~builder ~strategy ~model =
  if t.fail_budget > 0 then begin
    t.fail_budget <- t.fail_budget - 1;
    failwith (fail_env ^ ": injected pipeline failure")
  end;
  match Ds_isa.Parser.parse_program_result text with
  | Error msg -> Error (Block_parse, msg)
  | Ok insns ->
      let blocks = Ds_cfg.Builder.partition insns in
      let config =
        { Batch.section6 with
          Batch.algorithm = builder;
          opts =
            { Ds_dag.Opts.default with
              Ds_dag.Opts.model; strategy } }
      in
      let results = Batch.run_on ~pool:t.pool ~chunk:t.chunk config blocks in
      let fingerprint =
        List.fold_left
          (fun h (r : Batch.result) ->
            Cache.hash_fold_int64 h r.Batch.fingerprint)
          Cache.hash_seed results
      in
      let report =
        { (Batch.report ~domains:t.domains ~wall_s:0.0 results) with
          Batch.block_s_mean = 0.0;
          block_s_max = 0.0 }
      in
      let json =
        Json.Obj
          [ ("status", Json.String "ok");
            ("op", Json.String "schedule");
            ("fingerprint", Json.String (fingerprint_hex fingerprint));
            ("report", Batch.report_to_json report);
            ("results", Json.List (List.map result_to_json results)) ]
      in
      Ok (fingerprint, Json.to_string json)

let m_requests = Ds_obs.Metrics.counter "serve.requests"

(* per-request metadata for the access log and windowed RED metrics:
   op name, cache disposition and outcome (["ok"] or the error kind) *)
type disposition = { d_op : string; d_cache : string; d_outcome : string }

let ok_disp ~op ?(cache = "-") () = { d_op = op; d_cache = cache; d_outcome = "ok" }

let handle_request t ~id json =
  match request_of_json json with
  | Error e ->
      ( error_response ~id Bad_request (Json.error_to_string e),
        { d_op = "-"; d_cache = "-"; d_outcome = "bad-request" } )
  | Ok Ping -> (pong, ok_disp ~op:"ping" ())
  | Ok Stats -> (stats_response t, ok_disp ~op:"stats" ())
  | Ok Metrics -> (metrics_response t, ok_disp ~op:"metrics" ())
  | Ok (Schedule { text; builder; strategy; model }) -> (
      let config =
        { Cache.builder = Ds_dag.Builder.to_string builder;
          strategy = Ds_dag.Disambiguate.to_string strategy;
          model = model.Ds_machine.Latency.name }
      in
      match Cache.find t.cache ~text config with
      | Some hit -> (hit.Cache.payload, ok_disp ~op:"schedule" ~cache:"hit" ())
      | None -> (
          match schedule_cold t ~text ~builder ~strategy ~model with
          | Error (kind, msg) ->
              ( error_response ~id kind msg,
                { d_op = "schedule"; d_cache = "miss";
                  d_outcome = error_kind_to_string kind } )
          | Ok (fingerprint, payload) ->
              Cache.put t.cache ~text ~fingerprint config ~payload;
              (payload, ok_disp ~op:"schedule" ~cache:"miss" ())))

(* one JSONL access line per request, through the untorn [Log.Sink]
   writer (single write(2), O_APPEND): survives SIGKILL, shareable *)
let access_write t ~ts ~id ~op ~cache ~bytes_in ~bytes_out ~dur_us ~outcome =
  match t.access with
  | None -> ()
  | Some sink ->
      Ds_obs.Log.Sink.write_line sink
        (Json.to_string
           (Json.Obj
              [ ("ts", Json.Float ts);
                ("id", Json.String id);
                ("op", Json.String op);
                ("cache", Json.String cache);
                ("bytes_in", Json.Int bytes_in);
                ("bytes_out", Json.Int bytes_out);
                ("dur_us", Json.Int dur_us);
                ("outcome", Json.String outcome) ]))

let handle_payload t ~id payload =
  let t0 = Ds_obs.Clock.now () in
  let response, disp =
    match Json.of_string payload with
    | Error msg ->
        ( error_response ~id Parse msg,
          { d_op = "-"; d_cache = "-"; d_outcome = "parse" } )
    | Ok json -> (
        try handle_request t ~id json
        with e ->
          ( error_response ~id Internal (Printexc.to_string e),
            { d_op = "-"; d_cache = "-"; d_outcome = "internal" } ))
  in
  t.served <- t.served + 1;
  Ds_obs.Metrics.incr m_requests;
  let dur_s = Ds_obs.Clock.since t0 in
  let error = disp.d_outcome <> "ok" in
  Ds_obs.Window.observe_s ~error t.window dur_s;
  let dur_us = int_of_float (Float.round (dur_s *. 1e6)) in
  access_write t ~ts:t0 ~id ~op:disp.d_op ~cache:disp.d_cache
    ~bytes_in:(String.length payload)
    ~bytes_out:(String.length response)
    ~dur_us ~outcome:disp.d_outcome;
  Ds_obs.Log.log Ds_obs.Log.Debug ~scope:"serve"
    ~fields:
      [ ("id", Json.String id);
        ("op", Json.String disp.d_op);
        ("cache", Json.String disp.d_cache);
        ("dur_us", Json.Int dur_us);
        ("outcome", Json.String disp.d_outcome) ]
    "request";
  response

let handle_text t payload = handle_payload t ~id:(next_id t) payload

(* ------------------------------------------------------------------ *)
(* the daemon *)

type options = {
  domains : int;
  chunk : int;
  max_entries : int;
  max_bytes : int;
  max_frame : int;
  read_timeout_s : float;
  backlog : int;
  service_obs : bool;
  access_log : string option;
}

let default_options =
  { domains = 1;
    chunk = 0;
    max_entries = 4096;
    max_bytes = 256 * 1024 * 1024;
    max_frame = Frame.default_max_bytes;
    read_timeout_s = 10.0;
    backlog = 128;
    service_obs = true;
    access_log = None }

let log_serve ?(fields = []) level msg =
  Ds_obs.Log.log level ~scope:"serve" ~fields msg

(* one connection: one framed request, one framed response.  All frame
   damage answers a typed error when the peer can still hear it; the
   daemon itself never dies for a connection's sake. *)
let handle_connection t ~max_frame fd =
  (* the id is minted per connection so frame-level damage (which never
     reaches request handling) still correlates its error response,
     log line and access-log line *)
  let id = next_id t in
  let t0 = Ds_obs.Clock.now () in
  let respond text =
    try Frame.write fd text
    with Unix.Unix_error _ ->
      (* peer vanished between request and response; nothing to do *)
      log_serve Ds_obs.Log.Warn
        ~fields:[ ("id", Json.String id) ]
        "client gone before response"
  in
  let frame_error kind message =
    respond (error_response ~id kind message);
    let dur_us =
      int_of_float (Float.round (Ds_obs.Clock.since t0 *. 1e6))
    in
    access_write t ~ts:t0 ~id ~op:"-" ~cache:"-" ~bytes_in:0
      ~bytes_out:0 ~dur_us ~outcome:(error_kind_to_string kind)
  in
  let reader = Frame.reader fd in
  match Frame.read ~max_bytes:max_frame reader with
  | Ok payload ->
      let response =
        Ds_obs.Trace.with_span ~cat:"serve"
          ~args:
            [ ("bytes", Json.Int (String.length payload));
              ("id", Json.String id) ]
          "request"
          (fun () -> handle_payload t ~id payload)
      in
      respond response
  | Error Frame.Closed ->
      (* disconnect before/inside the request frame: log, move on *)
      log_serve Ds_obs.Log.Warn
        ~fields:[ ("id", Json.String id) ]
        "client disconnected mid-request"
  | Error Frame.Timeout -> frame_error Malformed_frame "request read timed out"
  | Error (Frame.Oversized n) ->
      frame_error Oversized
        (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" n
           max_frame)
  | Error (Frame.Malformed msg) -> frame_error Malformed_frame msg

let run ?(options = default_options) ~socket () =
  let draining = Atomic.make false in
  match
    match options.access_log with
    | None -> Ok None
    | Some path -> Result.map Option.some (Ds_obs.Log.Sink.open_ ~append:false path)
  with
  | Error msg ->
      Printf.eprintf "serve: cannot open access log: %s\n%!" msg;
      125
  | Ok access -> (
      let close_access () =
        match access with Some s -> Ds_obs.Log.Sink.close s | None -> ()
      in
      if options.service_obs then Ds_obs.Window.enable ();
      match
        let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           if Sys.file_exists socket then Unix.unlink socket;
           Unix.bind lfd (Unix.ADDR_UNIX socket);
           Unix.listen lfd (max 1 options.backlog)
         with e ->
           (try Unix.close lfd with Unix.Unix_error _ -> ());
           raise e);
        lfd
      with
      | exception Unix.Unix_error (err, _, _) ->
          Printf.eprintf "serve: cannot bind %s: %s\n%!" socket
            (Unix.error_message err);
          close_access ();
          125
      | exception Sys_error msg ->
          Printf.eprintf "serve: cannot bind %s: %s\n%!" socket msg;
          close_access ();
          125
      | lfd ->
      let state =
        create ~domains:options.domains ~chunk:options.chunk
          ~max_entries:options.max_entries ~max_bytes:options.max_bytes
          ?access ()
      in
      let old_sigint =
        match
          Sys.signal Sys.sigint
            (Sys.Signal_handle (fun _ -> Atomic.set draining true))
        with
        | behavior -> Some behavior
        | exception (Invalid_argument _ | Sys_error _) -> None
      in
      let cleanup () =
        (match old_sigint with
        | Some b -> ( try Sys.set_signal Sys.sigint b with Sys_error _ -> ())
        | None -> ());
        (try Unix.close lfd with Unix.Unix_error _ -> ());
        (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
        close_access ();
        destroy state
      in
      Fun.protect ~finally:cleanup @@ fun () ->
      log_serve Ds_obs.Log.Info
        ~fields:
          [ ("socket", Json.String socket);
            ("domains", Json.Int options.domains) ]
        "listening";
      Ds_obs.Log.heartbeat ~force:true ~phase:"listening" ~done_:0 ~total:0 ();
      while not (Atomic.get draining) do
        match Unix.select [ lfd ] [] [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ ->
            (* idle tick: liveness heartbeat (rate-limited) *)
            Ds_obs.Log.heartbeat ~phase:"idle" ~done_:state.served
              ~total:state.served ()
        | _ :: _, _, _ -> (
            match Unix.accept lfd with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
            | fd, _ ->
                Fun.protect
                  ~finally:(fun () ->
                    try Unix.close fd with Unix.Unix_error _ -> ())
                  (fun () ->
                    (try
                       Unix.setsockopt_float fd Unix.SO_RCVTIMEO
                         options.read_timeout_s
                     with Unix.Unix_error _ | Invalid_argument _ -> ());
                    handle_connection state ~max_frame:options.max_frame fd);
                Ds_obs.Log.heartbeat ~phase:"serve" ~done_:state.served
                  ~total:state.served ())
      done;
      log_serve Ds_obs.Log.Info
        ~fields:[ ("served", Json.Int state.served) ]
        "drained";
      Ds_obs.Log.heartbeat ~force:true ~phase:"drained" ~done_:state.served
        ~total:state.served ();
      130)

(* ------------------------------------------------------------------ *)
(* a minimal blocking client, shared by `schedtool client`, the bench
   load generator and the protocol tests *)

let request_once ?(max_frame = Frame.default_max_bytes) ~socket payload =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Unix.error_message err)
  | fd -> (
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | exception Unix.Unix_error (err, _, _) ->
          Error
            (Printf.sprintf "cannot connect to %s: %s" socket
               (Unix.error_message err))
      | () -> (
          match Frame.write fd payload with
          | exception Unix.Unix_error (err, _, _) ->
              Error ("write failed: " ^ Unix.error_message err)
          | () -> (
              match Frame.read ~max_bytes:max_frame (Frame.reader fd) with
              | Ok response -> Ok response
              | Error e -> Error (Frame.error_to_string e))))
