(** Multi-process fleet runner: fault-tolerant orchestration of shard
    workers as separate OS processes.

    {!Shard} scales one process across domains; this layer scales across
    {e processes}.  The corpus (a list of input files) is partitioned
    into per-worker {!manifest}s, each handed to a [schedtool worker]
    child via {!Unix.create_process_env}; every worker runs the ordinary
    batch pipeline over its files and prints a {!Batch.report} as JSON
    on stdout.  The orchestrator supervises the children:

    - a per-worker wall-clock {e timeout} (SIGKILL, then reap);
    - {e retries} with exponential backoff on nonzero exit, signal
      death, timeout, or malformed/truncated output;
    - {e graceful degradation}: a shard that exhausts its retry budget
      is reported in [failed_shards] rather than aborting the fleet —
      the aggregate covers the surviving shards.

    Process isolation is an accounting boundary exactly like sharding:
    every block still runs the identical per-block pipeline, so for a
    fault-free corpus the fleet aggregate's integer statistics equal the
    in-process [schedtool shard] aggregate for any worker count, retry
    budget or partition policy.  [test/test_fleet.ml] pins this down
    differentially, and drives the crash-injection knob
    ([DAGSCHED_WORKER_FAIL], see {!maybe_sabotage}) to check that a
    faulty fleet converges to the no-fault aggregate once retries
    succeed. *)

(** {1 Shard manifests} *)

(** What one worker is asked to do: which input files, and the pipeline
    options (DAG builder, disambiguation strategy, latency model by
    name, domain count for the worker's own pool). *)
type manifest = {
  files : string list;
  algorithm : Ds_dag.Builder.algorithm;
  strategy : Ds_dag.Disambiguate.t;
  model : string;
  domains : int;
}

val manifest_to_json : manifest -> Ds_util.Stats.Json.t

(** Total over arbitrary JSON, like the report readers: malformed input
    yields a typed error, no exception escapes. *)
val manifest_of_json :
  ?path:string list ->
  Ds_util.Stats.Json.t ->
  (manifest, Ds_util.Stats.Json.error) Stdlib.result

(** Resolve a manifest's symbolic options into a batch pipeline config
    ({!Batch.section6} with the manifest's builder/strategy/model).
    [Error] on an unknown latency-model name. *)
val config_of_manifest : manifest -> (Batch.pipeline_config, string) result

(** [plan ~workers ... files] partitions the corpus files into [workers]
    manifests using {!Shard.partition_weighted} with file byte size as
    the weight ([policy] defaults to [Balanced]).  An unreadable file
    weighs 0 and stays in the plan: its worker fails to parse it, which
    flows into the ordinary failure/degradation path. *)
val plan :
  ?policy:Shard.policy ->
  workers:int ->
  algorithm:Ds_dag.Builder.algorithm ->
  strategy:Ds_dag.Disambiguate.t ->
  model:string ->
  domains:int ->
  string list ->
  manifest list

(** {1 Supervision} *)

(** Why one worker attempt failed. *)
type failure =
  | Exited of int       (* nonzero exit code *)
  | Signaled of int     (* killed by a signal (other than our timeout) *)
  | Timed_out           (* exceeded the per-worker timeout; SIGKILLed *)
  | Bad_output of string  (* exit 0 but stdout was not a valid report *)

val failure_to_string : failure -> string

(** One supervised attempt, in attempt order.  [duration_s] is the
    spawn-to-settle time as seen by the orchestrator on the
    monotonic-leaning {!Ds_obs.Clock} (never negative, even across
    wall-clock steps); [backoff_s] is the retry delay {e scheduled}
    after this attempt by the exponential schedule — 0 for a success or
    for the final exhausted attempt — so it is deterministic for a given
    fault pattern; [outcome = None] means success. *)
type attempt = {
  duration_s : float;
  backoff_s : float;
  outcome : failure option;
}

(** Per-shard supervision record: every attempt's failure is kept (in
    attempt order), [report = None] marks a permanently failed shard.
    [attempt_log] has one structured entry per attempt (duration,
    scheduled backoff, outcome).  [wall_s] sums the shard's attempt
    durations as seen by the orchestrator (spawn to reap, including the
    killed attempts). *)
type worker_log = {
  shard : int;
  files : string list;
  attempts : int;
  failures : failure list;
  attempt_log : attempt list;
  wall_s : float;
  report : Batch.report option;
}

(** Live per-shard progress, derived from the worker heartbeats the
    orchestrator tails out of the shared log stream.  [state] is one of
    ["waiting"] (between attempts), ["running"], ["ok"], ["failed"];
    [done_blocks]/[total_blocks]/[phase]/[rss_kb] echo the shard's most
    recent heartbeat (zero/empty before the first one); [beat_age_s] is
    the time since that heartbeat (or since spawn) for a running shard;
    [stalled] flags a running shard whose [beat_age_s] exceeded
    [options.stall_s] — the early-warning signal that fires {e before}
    the timeout kill. *)
type progress = {
  shard : int;
  state : string;
  done_blocks : int;
  total_blocks : int;
  phase : string;
  rss_kb : int;
  beat_age_s : float;
  stalled : bool;
}

(** Supervision knobs.  [timeout_s] is per attempt; a failed attempt
    [k] (1-based) is retried after [backoff_s *. 2. ** float (k - 1)]
    until [retries] extra attempts are exhausted.  [poll_s] is the idle
    supervisor sleep.  [stall_s] is the heartbeat-silence threshold for
    {!progress.stalled}; [heartbeat_s] is the interval exported to the
    workers; [on_progress] (the [--progress] renderer) is invoked from
    the supervision loop whenever the fleet's visible state changes —
    a shard starts/finishes, a heartbeat advances, a stall begins. *)
type options = {
  timeout_s : float;
  retries : int;
  backoff_s : float;
  poll_s : float;
  stall_s : float;
  heartbeat_s : float;
  on_progress : (progress list -> unit) option;
}

(** 60 s timeout, 2 retries, 0.1 s initial backoff, 5 ms poll, 5 s
    stall threshold, 0.5 s heartbeat, no progress callback. *)
val default_options : options

(** A completed fleet run.  [corpus] is the input file list in its
    original order (not shard order), so the summary JSON is stable
    across worker counts; [aggregate] merges the surviving shards'
    reports ({!Batch.report_merge}) with the fleet's own wall clock. *)
type t = {
  workers : int;
  timeout_s : float;
  retries : int;
  corpus : string list;
  aggregate : Batch.report;
  logs : worker_log list;
}

(** [run ~worker ~corpus manifests] writes each manifest to a temp file,
    spawns [worker] (argv prefix, e.g. [[| "schedtool"; "worker" |]])
    with the manifest path appended, and supervises to completion as
    described above.  Workers inherit the environment plus
    [DAGSCHED_WORKER_SHARD] (shard index), [DAGSCHED_WORKER_ATTEMPT]
    (1-based attempt counter) and — when {!Ds_obs.Trace}/{!Ds_obs.Metrics}
    are enabled — [DAGSCHED_OBS], which makes each worker record its own
    spans/metrics and ship them home in an ["obs"] section of its report
    JSON; the orchestrator injects those spans (re-homed to fleet pid
    [shard + 1]) and absorbs the metrics, forming one fleet-wide
    timeline.  When tracing is enabled the orchestrator also records
    [spawn]/[attempt]/[merge] spans of its own.

    When {!Ds_obs.Log} has a sink — or [options.on_progress] is set, in
    which case a temp stream is created — workers are pointed at the
    shared JSONL stream ([DAGSCHED_LOG] append-mode, plus level and
    heartbeat interval), the supervisor logs every spawn / attempt /
    retry / timeout / permanent-failure decision into it (scope
    ["fleet"]), and the orchestrator tails worker heartbeats out of it
    to drive [on_progress] and stall detection.

    Temp files (manifests, output captures, a temp stream) are removed
    on every exit path: normal return, exception, and — via a SIGINT
    handler installed for the duration of the run that first SIGKILLs
    the live workers and then exits 130 — Ctrl-C. *)
val run :
  ?options:options -> worker:string array -> corpus:string list ->
  manifest list -> t

(** Surviving shards' reports, in shard order. *)
val per_shard : t -> Batch.report list

(** Indices of permanently failed shards (empty on a fully successful
    run). *)
val failed_shards : t -> int list

(** {1 JSON} *)

(** Field-wise equality, NaN-tolerant on embedded reports. *)
val equal : t -> t -> bool

(** The fleet report schema (docs/FORMAT.md): the shard-style
    [corpus]/[aggregate]/[per_shard] core plus [workers]/[timeout_s]/
    [retries]/[failed_shards] and a [fleet] list with one supervision
    entry per shard. *)
val to_json : t -> Ds_util.Stats.Json.t

(** Total over arbitrary JSON; round trips {!to_json} up to {!equal}. *)
val of_json :
  ?path:string list ->
  Ds_util.Stats.Json.t ->
  (t, Ds_util.Stats.Json.error) Stdlib.result

(** Total retries across the fleet: [sum (attempts - 1)]. *)
val retries_used : t -> int

(** Total backoff delay {e scheduled} by the exponential schedule,
    rounded to whole microseconds — deterministic for a given fault
    pattern and [--backoff], unlike a wall-clock measurement. *)
val backoff_total_s : t -> float

(** Timing-free summary (corpus in input order, aggregate integer
    fields, failed shards, plus the deterministic supervision
    aggregates {!retries_used}/{!backoff_total_s}): what
    [schedtool fleet] prints on stdout.  Byte-stable across
    [--workers]/[--retries] for a fault-free run, and byte-stable
    across [--workers] even with faults when the fault spec pins the
    failing shard. *)
val summary_to_json : t -> Ds_util.Stats.Json.t

(** {1 Crash injection (test knob)} *)

(** Exit code used by the [exit] sabotage mode (and by a sabotaged
    [hang] worker that somehow survives its kill): 7. *)
val sabotage_exit_code : int

(** Called by [schedtool worker] before doing any work.  Reads
    [DAGSCHED_WORKER_FAIL] = ["MODE:N"] or ["MODE:N:SHARD"]; when the
    current attempt ([DAGSCHED_WORKER_ATTEMPT]) is [<= N] — and, with
    the third field, only in shard [SHARD] — the worker sabotages
    itself: [exit] exits with {!sabotage_exit_code}, [truncate] prints a
    prefix of a report and exits 0, [hang] sleeps for an hour.  Unset,
    empty, or unparseable specs are ignored, as are unknown modes. *)
val maybe_sabotage : unit -> unit
