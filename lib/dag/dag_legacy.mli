(** The pre-arena DAG representation, kept verbatim as a yardstick for
    the differential tests and [bench dag].  Faithfully preserves the two
    historical bugs of the list-based structure: [find_arc]'s unbounded
    hash key (out-of-range queries alias in-range pairs) and the
    insertion-order-dependent [kind] on an equal-latency coalesce.  Not
    for pipeline use. *)

type arc = {
  src : int;
  dst : int;
  kind : Ds_machine.Dep.kind;
  latency : int;
}

type t

val create : model:Ds_machine.Latency.t -> Ds_isa.Insn.t array -> t

val length : t -> int
val insn : t -> int -> Ds_isa.Insn.t
val model : t -> Ds_machine.Latency.t

val succs : t -> int -> arc list
val preds : t -> int -> arc list

val n_children : t -> int -> int
val n_parents : t -> int -> int
val n_arcs : t -> int
val sum_delays_to_children : t -> int -> int
val max_delay_to_child : t -> int -> int
val sum_delays_from_parents : t -> int -> int
val max_delay_from_parent : t -> int -> int
val interlock_with_child : t -> int -> bool

(** Historical behaviour: no bounds check on the [src * n + dst] key, so
    out-of-range queries can report phantom arcs. *)
val find_arc : t -> src:int -> dst:int -> arc option

val has_arc : t -> src:int -> dst:int -> bool

(** Historical behaviour: an equal-latency coalesce keeps whichever kind
    arrived first. *)
val add_arc :
  t -> src:int -> dst:int -> kind:Ds_machine.Dep.kind -> latency:int -> bool

val roots : t -> int list
val leaves : t -> int list
val anchor_terminator : t -> unit

val iter_arcs : (arc -> unit) -> t -> unit
val arcs : t -> arc list

(** The pre-arena forward table builder against this legacy structure —
    the [bench dag] allocation yardstick. *)
val build_table_fwd : Opts.t -> Ds_cfg.Block.t -> t
