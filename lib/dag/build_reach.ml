(** Backward construction with reachability bit maps.

    The second transitive-arc prevention scheme of §2: the maps use one bit
    position per node to indicate descendants, and each map starts with the
    node reaching itself.  Arc insertion follows the algorithm quoted in
    the paper:

    {v
    /* try to add arc from_a to to_b */
    if ( bit to_b in bitmap_for_a is set ) return;
    bitmap_for_a = bitmap_for_a OR bitmap_for_b;
    add_arc(from_a, to_b);
    v}

    Nodes are visited in reverse program order and candidates in ascending
    order, so a candidate's descendant map is already complete when merged;
    the produced DAG is transitively reduced.  The maps live in one
    contiguous bit matrix (one row per node) and the merge is a row-OR
    with zero per-arc allocation; they are retained on the DAG — the paper
    notes [#descendants] then falls out as a population count. *)

(* dependencies whose direct arc the reachability test suppressed *)
let pruned_counter = Ds_obs.Metrics.counter "dag.transitive_arcs_pruned"

let build (opts : Opts.t) (block : Ds_cfg.Block.t) =
  let insns = block.Ds_cfg.Block.insns in
  let dag = Dag.create ~model:opts.model insns in
  let sums = Pairdep.summarize_block opts.strategy insns in
  let n = Array.length insns in
  let reach = Ds_util.Bitset.Matrix.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    Ds_util.Bitset.Matrix.set reach i i
  done;
  for a = n - 2 downto 0 do
    for b = a + 1 to n - 1 do
      let pk =
        Pairdep.strongest_packed sums ~model:opts.model
          ~strategy:opts.strategy insns a b
      in
      if pk >= 0 then begin
        if Ds_util.Bitset.Matrix.mem reach a b then
          Ds_obs.Metrics.incr pruned_counter
        else begin
          Ds_util.Bitset.Matrix.union_rows reach ~into:a ~from:b;
          ignore
            (Dag.add_arc dag ~src:a ~dst:b ~kind:(Pairdep.kind_of_packed pk)
               ~latency:(Pairdep.latency_of_packed pk))
        end
      end
    done
  done;
  if opts.anchor_branch then begin
    Dag.anchor_terminator dag;
    (* anchoring adds leaf->branch arcs after the fact; refresh the maps so
       ancestors of the anchored leaves also see the branch *)
    for i = n - 1 downto 0 do
      Dag.iter_succ_dsts dag i (fun dst ->
          Ds_util.Bitset.Matrix.union_rows reach ~into:i ~from:dst)
    done
  end;
  Dag.set_reach_matrix dag reach;
  dag
