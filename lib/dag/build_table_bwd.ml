(** Table-building DAG construction, backward pass.

    A direct implementation of the algorithm the paper quotes (§2, from
    Hunnicutt): instructions are visited in reverse program order, so the
    table records the *earliest-seen later* definition and the pending
    later uses of each resource.  Definitions are processed before uses:

    {v
    /* process resources defined */
    if (resource[definition_entry] not empty and resource[uselist] is empty)
        add_arc(WAW, newnode, resource[definition_entry]);
    foreach (uselist_entry in resource[uselist] in ascending order) do {
        add_arc(RAW, newnode, uselist_entry);
        delete uselist_entry from resource[uselist];
    }
    insert newnode as resource[definition_entry];
    /* process resources used */
    if (resource[definition_entry] not empty)
        add_arc(WAR, newnode, resource[definition_entry]);
    add newnode as a uselist_entry into resource[uselist];
    v}

    As in the forward builder, cross-expression memory aliasing (which is
    not transitive) is handled by drawing conservative arcs against every
    may-aliasing entry's recorded definition and uses without touching
    that entry's state; only an expression's own definition clears its
    uselist.

    The paper pairs this builder with a plain linked-list first pass, which
    eliminates the child-revisitation overhead of the forward approaches
    before the backward heuristic pass (§6, third approach).

    Like the forward pass, this is allocation-free per block: resources
    are scanned into a reused buffer and the table is the flat per-domain
    arena of {!Res_table}. *)

open Ds_isa
open Ds_machine

let build (opts : Opts.t) (block : Ds_cfg.Block.t) =
  let insns = block.Ds_cfg.Block.insns in
  let dag = Dag.create ~model:opts.model insns in
  let table = Res_table.create opts.strategy in
  let strategy = opts.strategy in
  let model = opts.model in
  let buf = Res_table.scan_buf table in
  let n = Array.length insns in
  for j = n - 1 downto 0 do
    let parent = insns.(j) in
    (* process resources defined *)
    Insn.scan_defs buf parent;
    for def_pos = 0 to Insn.Scan.len buf - 1 do
      let res = Disambiguate.canonical strategy (Insn.Scan.res buf def_pos) in
      let own = Res_table.lookup table res in
      (* own entry: the paper's algorithm, including the clear *)
      if not (Res_table.has_uses table own) then begin
        let dpk = Res_table.def_pk table own in
        if dpk >= 0 && dpk lsr 8 <> j then begin
          let d = dpk lsr 8 in
          let latency = model.Latency.waw ~parent ~res ~child:insns.(d) in
          ignore (Dag.add_arc dag ~src:j ~dst:d ~kind:Dep.Waw ~latency)
        end
      end
      else begin
        let nu = Res_table.uses_into table own ~except:j in
        for k = 0 to nu - 1 do
          let u = Res_table.use_node table k in
          let latency =
            model.Latency.raw ~parent ~def_pos ~res ~child:insns.(u)
              ~use_pos:(Res_table.use_pos table k)
          in
          ignore (Dag.add_arc dag ~src:j ~dst:u ~kind:Dep.Raw ~latency)
        done
      end;
      Res_table.clear_uses table own;
      Res_table.set_def table own ~node:j ~pos:def_pos;
      (* cross-aliasing entries: conservative arcs, no state change *)
      let nc = Res_table.cross_into table ~self:own res in
      for k = 0 to nc - 1 do
        let e = Res_table.cross_id table k in
        let nu = Res_table.uses_into table e ~except:j in
        for m = 0 to nu - 1 do
          let u = Res_table.use_node table m in
          let latency =
            model.Latency.raw ~parent ~def_pos ~res ~child:insns.(u)
              ~use_pos:(Res_table.use_pos table m)
          in
          ignore (Dag.add_arc dag ~src:j ~dst:u ~kind:Dep.Raw ~latency)
        done;
        let dpk = Res_table.def_pk table e in
        if dpk >= 0 && dpk lsr 8 <> j then begin
          let d = dpk lsr 8 in
          let latency = model.Latency.waw ~parent ~res ~child:insns.(d) in
          ignore (Dag.add_arc dag ~src:j ~dst:d ~kind:Dep.Waw ~latency)
        end
      done
    done;
    (* process resources used *)
    Insn.scan_uses buf parent;
    for use_pos = 0 to Insn.Scan.len buf - 1 do
      let res = Disambiguate.canonical strategy (Insn.Scan.res buf use_pos) in
      let own = Res_table.lookup table res in
      let dpk = Res_table.def_pk table own in
      if dpk >= 0 && dpk lsr 8 <> j then begin
        let d = dpk lsr 8 in
        let latency = model.Latency.war ~parent ~res ~child:insns.(d) in
        ignore (Dag.add_arc dag ~src:j ~dst:d ~kind:Dep.War ~latency)
      end;
      let nc = Res_table.cross_into table ~self:own res in
      for k = 0 to nc - 1 do
        let e = Res_table.cross_id table k in
        let dpk = Res_table.def_pk table e in
        if dpk >= 0 && dpk lsr 8 <> j then begin
          let d = dpk lsr 8 in
          let latency = model.Latency.war ~parent ~res ~child:insns.(d) in
          ignore (Dag.add_arc dag ~src:j ~dst:d ~kind:Dep.War ~latency)
        end
      done;
      Res_table.add_use table own ~node:j ~pos:use_pos
    done
  done;
  if opts.anchor_branch then Dag.anchor_terminator dag;
  dag
