(** The resource table of table-building DAG construction: per-resource
    record of the most recent definition and the set of current uses
    (§2).  Memory entries additionally participate in cross-expression
    alias scans.

    The table is flat: resources are interned to dense integer entry
    ids (registers, condition codes, [%y], [Mem_all] have fixed ids;
    symbolic memory expressions are interned on first encounter, the
    variable-length growth of §6), and per-entry state lives in
    preallocated per-domain arrays with epoch-stamped lazy reset — so
    building a table for a new block allocates nothing.  Uselists are
    intrusive chains in a pooled arena; iteration hands out indices
    into internal buffers rather than lists, keeping the builders'
    hot loops closure- and allocation-free.

    Concurrency: the backing scratch is domain-local and reused across
    blocks.  At most one table may be live per domain at a time —
    [create] invalidates any table previously created on the same
    domain.  The DAG builders (the only consumers) respect this by
    construction. *)

type t

(** [create strategy] starts a fresh table for one block on this
    domain's scratch (invalidating any previous table of this domain). *)
val create : Disambiguate.t -> t

(** Entry id for a (canonicalized) resource, interning it on first
    encounter.  Counts one [dag.table_probes] metric per call — this is
    the paper's per-access table lookup. *)
val lookup : t -> Ds_isa.Resource.t -> int

(** The resource a live entry id denotes. *)
val resource : t -> int -> Ds_isa.Resource.t

(** Recorded definition of an entry, packed as
    [(node lsl 8) lor def_pos], or [-1] when empty. *)
val def_pk : t -> int -> int

val set_def : t -> int -> node:int -> pos:int -> unit

(** Append a use (node, use position) to the entry's uselist. *)
val add_use : t -> int -> node:int -> pos:int -> unit

val clear_uses : t -> int -> unit
val has_uses : t -> int -> bool

(** [uses_into t e ~except] fills the internal use buffer with [e]'s
    recorded uses whose node differs from [except], in ascending node
    order (the paper iterates the uselist "in ascending order"; ties
    keep newest-first insertion order, matching a stable sort of the
    legacy list representation), and returns their count.  The buffer
    is valid until the next [uses_into] on this domain; read it with
    {!use_node}/{!use_pos}. *)
val uses_into : t -> int -> except:int -> int

val use_node : t -> int -> int
val use_pos : t -> int -> int

(** [cross_into t ~self res] fills the internal cross buffer with the
    ids of memory entries other than [self] that may denote the same
    storage as [res] — newest first, like the legacy entry list — and
    returns their count.  May-alias is not transitive, so callers add
    arcs against these conservatively and never clear them; only an
    entry's own definition clears its uselist.  Always 0 under the
    [Symbolic] strategy.  When metrics are enabled, adds the number of
    memory entries scanned (before filtering) to
    [dag.alias_entries_scanned].  The buffer is valid until the next
    [cross_into] on this domain; read it with {!cross_id}. *)
val cross_into : t -> self:int -> Ds_isa.Resource.t -> int

val cross_id : t -> int -> int

(** Per-domain instruction-scan buffer, for builders to use with
    [Insn.scan_defs]/[Insn.scan_uses]. *)
val scan_buf : t -> Ds_isa.Insn.Scan.buf

(** Number of distinct entries touched for this block (the
    variable-length table growth of §6). *)
val size : t -> int
