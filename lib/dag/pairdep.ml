(** Pairwise dependence analysis.

    Enumerates the data dependencies between two instructions — the test at
    the heart of the compare-against-all (n²) construction, and the arc
    latency computation shared by all builders.

    The n² builders call this O(n²) times per block, so the per-instruction
    resource extraction is done once into a [summary] and the pair test
    works over the cached lists. *)

open Ds_isa
open Ds_machine

type conflict = {
  kind : Dep.kind;
  res : Resource.t;      (* the parent-side resource *)
  def_pos : int;         (* position among the parent's defs (RAW/WAW) *)
  use_pos : int;         (* position among the child's uses (RAW) *)
  latency : int;
}

(** Canonicalized defs/uses of one instruction under a disambiguation
    strategy. *)
type summary = {
  defs : (Resource.t * int) list;  (* resource, definition position *)
  uses : (Resource.t * int) list;  (* resource, source-operand position *)
}

let summarize strategy insn =
  {
    defs =
      List.mapi
        (fun pos r -> (Disambiguate.canonical strategy r, pos))
        (Insn.defs insn);
    uses =
      List.map
        (fun (r, pos) -> (Disambiguate.canonical strategy r, pos))
        (Insn.uses_with_pos insn);
  }

(** All dependencies making [child] depend on [parent] (parent earlier in
    program order), given their summaries. *)
let conflicts_of ~model ~strategy ~parent ~parent_sum ~child ~child_sum =
  let alias = Disambiguate.may_alias strategy in
  let acc = ref [] in
  (* RAW: parent def vs child use *)
  List.iter
    (fun (dr, def_pos) ->
      List.iter
        (fun (ur, use_pos) ->
          if alias dr ur then
            let latency =
              model.Latency.raw ~parent ~def_pos ~res:dr ~child ~use_pos
            in
            acc := { kind = Dep.Raw; res = dr; def_pos; use_pos; latency } :: !acc)
        child_sum.uses)
    parent_sum.defs;
  (* WAW: parent def vs child def *)
  List.iter
    (fun (dr, def_pos) ->
      List.iter
        (fun (cr, _) ->
          if alias dr cr then
            let latency = model.Latency.waw ~parent ~res:dr ~child in
            acc := { kind = Dep.Waw; res = dr; def_pos; use_pos = 0; latency } :: !acc)
        child_sum.defs)
    parent_sum.defs;
  (* WAR: parent use vs child def *)
  List.iter
    (fun (ur, _) ->
      List.iter
        (fun (cr, _) ->
          if alias ur cr then
            let latency = model.Latency.war ~parent ~res:ur ~child in
            acc := { kind = Dep.War; res = ur; def_pos = 0; use_pos = 0; latency } :: !acc)
        child_sum.defs)
    parent_sum.uses;
  !acc

let rank c =
  ( c.latency,
    match c.kind with Dep.Raw -> 3 | Dep.Waw -> 2 | Dep.War -> 1 | Dep.Ctl -> 0 )

(** The single most constraining dependency between the pair, if any:
    largest latency wins, RAW preferred on ties (it is the one heuristics
    reason about). *)
let strongest_of ~model ~strategy ~parent ~parent_sum ~child ~child_sum =
  List.fold_left
    (fun best c ->
      match best with
      | None -> Some c
      | Some b -> if rank c > rank b then Some c else best)
    None
    (conflicts_of ~model ~strategy ~parent ~parent_sum ~child ~child_sum)

(* ------------------------------------------------------------------ *)
(* Flat block summaries: the closure- and allocation-free pair path the
   O(n²) builders run.  One per-domain scratch holds every instruction's
   canonicalized defs/uses packed into two resource arrays with offset
   tables (definition/use positions are the packed-order indices, the
   same sequential positions the list API reports), plus the mutable
   best-conflict cell used by [strongest_packed].  At most one live
   block summary per domain: [summarize_block] invalidates the previous
   one. *)

type block_sum = {
  mutable def_res : Resource.t array;
  mutable def_off : int array;         (* length n+1; defs of insn i are
                                          def_res.[def_off.(i) .. def_off.(i+1)) *)
  mutable use_res : Resource.t array;
  mutable use_off : int array;
  mutable best : int;                  (* strongest_packed scratch *)
  scan : Insn.Scan.buf;
}

let block_key =
  Domain.DLS.new_key (fun () ->
      { def_res = Array.make 64 Resource.Ctrl;
        def_off = Array.make 17 0;
        use_res = Array.make 64 Resource.Ctrl;
        use_off = Array.make 17 0;
        best = -1;
        scan = Insn.Scan.create () })

let grow_to a len fill =
  if len > Array.length a then begin
    let grown = Array.make (max len (2 * Array.length a)) fill in
    Array.blit a 0 grown 0 (Array.length a);
    grown
  end
  else a

let summarize_block strategy insns =
  let st = Domain.DLS.get block_key in
  let n = Array.length insns in
  st.def_off <- grow_to st.def_off (n + 1) 0;
  st.use_off <- grow_to st.use_off (n + 1) 0;
  let nd = ref 0 and nu = ref 0 in
  for i = 0 to n - 1 do
    st.def_off.(i) <- !nd;
    Insn.scan_defs st.scan insns.(i);
    for k = 0 to Insn.Scan.len st.scan - 1 do
      st.def_res <- grow_to st.def_res (!nd + 1) Resource.Ctrl;
      st.def_res.(!nd) <- Disambiguate.canonical strategy (Insn.Scan.res st.scan k);
      incr nd
    done;
    st.use_off.(i) <- !nu;
    Insn.scan_uses st.scan insns.(i);
    for k = 0 to Insn.Scan.len st.scan - 1 do
      st.use_res <- grow_to st.use_res (!nu + 1) Resource.Ctrl;
      st.use_res.(!nu) <- Disambiguate.canonical strategy (Insn.Scan.res st.scan k);
      incr nu
    done
  done;
  st.def_off.(n) <- !nd;
  st.use_off.(n) <- !nu;
  st

(* Strongest conflicts are packed as [(latency lsl 2) lor rank] with the
   tie rank of [rank] above (Raw 3 > Waw 2 > War 1), or [-1] for
   independence — so "largest latency wins, RAW preferred on ties" is a
   single integer max and the pair test allocates nothing.  Equal-rank
   winners can differ from the list fold in which *resource* carried the
   conflict, but kind and latency — all the builders consume — are
   uniquely determined by the rank. *)

let strongest_packed st ~model ~strategy insns i j =
  let parent = insns.(i) and child = insns.(j) in
  let pd0 = st.def_off.(i) and pd1 = st.def_off.(i + 1) in
  let pu0 = st.use_off.(i) and pu1 = st.use_off.(i + 1) in
  let cd0 = st.def_off.(j) and cd1 = st.def_off.(j + 1) in
  let cu0 = st.use_off.(j) and cu1 = st.use_off.(j + 1) in
  st.best <- -1;
  (* RAW: parent def vs child use *)
  for d = pd0 to pd1 - 1 do
    let dr = st.def_res.(d) in
    for u = cu0 to cu1 - 1 do
      if Disambiguate.may_alias strategy dr st.use_res.(u) then begin
        let latency =
          model.Latency.raw ~parent ~def_pos:(d - pd0) ~res:dr ~child
            ~use_pos:(u - cu0)
        in
        let pk = (latency lsl 2) lor 3 in
        if pk > st.best then st.best <- pk
      end
    done
  done;
  (* WAW: parent def vs child def *)
  for d = pd0 to pd1 - 1 do
    let dr = st.def_res.(d) in
    for c = cd0 to cd1 - 1 do
      if Disambiguate.may_alias strategy dr st.def_res.(c) then begin
        let latency = model.Latency.waw ~parent ~res:dr ~child in
        let pk = (latency lsl 2) lor 2 in
        if pk > st.best then st.best <- pk
      end
    done
  done;
  (* WAR: parent use vs child def *)
  for u = pu0 to pu1 - 1 do
    let ur = st.use_res.(u) in
    for c = cd0 to cd1 - 1 do
      if Disambiguate.may_alias strategy ur st.def_res.(c) then begin
        let latency = model.Latency.war ~parent ~res:ur ~child in
        let pk = (latency lsl 2) lor 1 in
        if pk > st.best then st.best <- pk
      end
    done
  done;
  st.best

let kind_of_packed pk =
  match pk land 3 with
  | 3 -> Dep.Raw
  | 2 -> Dep.Waw
  | 1 -> Dep.War
  | _ -> Dep.Ctl

let latency_of_packed pk = pk lsr 2

(* Convenience wrappers that summarize on the fly. *)

let conflicts ~model ~strategy ~parent ~child =
  conflicts_of ~model ~strategy ~parent
    ~parent_sum:(summarize strategy parent) ~child
    ~child_sum:(summarize strategy child)

let strongest ~model ~strategy ~parent ~child =
  strongest_of ~model ~strategy ~parent
    ~parent_sum:(summarize strategy parent) ~child
    ~child_sum:(summarize strategy child)

let depends ~strategy ~parent ~child =
  conflicts ~model:Latency.unit_latency ~strategy ~parent ~child <> []
