(** The pre-arena DAG representation, kept verbatim as a yardstick.

    This is the pointer-and-list [Dag.t] that shipped before the arena
    refactor: per-node [arc list] adjacency, boxed counter arrays, and an
    [arc_index] hashtable keyed [src * n + dst].  It exists for two
    consumers only:

    - the differential tests, which replay arena-built DAGs into this
      structure and require identical arcs, counters and view orders
      (and which demonstrate the two historical bugs this module
      faithfully preserves: the unbounded [find_arc] key that aliases
      out-of-range queries onto in-range pairs, and the
      insertion-order-dependent [kind] kept on an equal-latency
      coalesce);
    - [bench dag], which measures the legacy allocation profile against
      the arena on the same corpus.

    Do not use it in the pipeline. *)

open Ds_isa
open Ds_machine

type arc = { src : int; dst : int; kind : Dep.kind; latency : int }

type t = {
  insns : Insn.t array;
  model : Latency.t;
  succs : arc list array;       (* children, most recently added first *)
  preds : arc list array;       (* parents *)
  n_children : int array;
  n_parents : int array;
  sum_delays_to_children : int array;
  max_delay_to_child : int array;
  sum_delays_from_parents : int array;
  max_delay_from_parent : int array;
  interlock_with_child : bool array;  (* any outgoing arc with delay > 1 *)
  mutable n_arcs : int;
  arc_index : (int, arc) Hashtbl.t;   (* src * n + dst -> arc *)
}

let create ~model insns =
  let n = Array.length insns in
  {
    insns;
    model;
    succs = Array.make n [];
    preds = Array.make n [];
    n_children = Array.make n 0;
    n_parents = Array.make n 0;
    sum_delays_to_children = Array.make n 0;
    max_delay_to_child = Array.make n 0;
    sum_delays_from_parents = Array.make n 0;
    max_delay_from_parent = Array.make n 0;
    interlock_with_child = Array.make n false;
    n_arcs = 0;
    arc_index = Hashtbl.create (4 * max 1 n);
  }

let length t = Array.length t.insns
let insn t i = t.insns.(i)
let model t = t.model
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)
let n_children t i = t.n_children.(i)
let n_parents t i = t.n_parents.(i)
let n_arcs t = t.n_arcs
let sum_delays_to_children t i = t.sum_delays_to_children.(i)
let max_delay_to_child t i = t.max_delay_to_child.(i)
let sum_delays_from_parents t i = t.sum_delays_from_parents.(i)
let max_delay_from_parent t i = t.max_delay_from_parent.(i)
let interlock_with_child t i = t.interlock_with_child.(i)

(* The historical aliasing bug, preserved: no bounds check, so e.g. with
   n = 10 the query (src = 0, dst = 13) keys to 13 — the slot of the
   in-range pair (src = 1, dst = 3). *)
let find_arc t ~src ~dst =
  Hashtbl.find_opt t.arc_index ((src * length t) + dst)

let has_arc t ~src ~dst = find_arc t ~src ~dst <> None

let account t arc ~fresh =
  let { src; dst; latency; _ } = arc in
  if fresh then begin
    t.n_children.(src) <- t.n_children.(src) + 1;
    t.n_parents.(dst) <- t.n_parents.(dst) + 1;
    t.n_arcs <- t.n_arcs + 1
  end;
  t.sum_delays_to_children.(src) <- t.sum_delays_to_children.(src) + latency;
  t.max_delay_to_child.(src) <- max t.max_delay_to_child.(src) latency;
  t.sum_delays_from_parents.(dst) <- t.sum_delays_from_parents.(dst) + latency;
  t.max_delay_from_parent.(dst) <- max t.max_delay_from_parent.(dst) latency;
  if latency > 1 then t.interlock_with_child.(src) <- true

(* The historical tie bug, preserved: an equal-latency coalesce keeps
   whichever kind was inserted first, so the surviving kind depends on
   builder visit order. *)
let add_arc t ~src ~dst ~kind ~latency =
  if src = dst then false
  else begin
    assert (src >= 0 && dst >= 0 && src < length t && dst < length t);
    let key = (src * length t) + dst in
    match Hashtbl.find_opt t.arc_index key with
    | Some existing ->
        if latency > existing.latency then begin
          let upgraded = { existing with kind; latency } in
          Hashtbl.replace t.arc_index key upgraded;
          t.succs.(src) <-
            List.map (fun a -> if a.dst = dst then upgraded else a) t.succs.(src);
          t.preds.(dst) <-
            List.map (fun a -> if a.src = src then upgraded else a) t.preds.(dst);
          t.sum_delays_to_children.(src) <-
            t.sum_delays_to_children.(src) - existing.latency;
          t.sum_delays_from_parents.(dst) <-
            t.sum_delays_from_parents.(dst) - existing.latency;
          account t upgraded ~fresh:false
        end;
        false
    | None ->
        let arc = { src; dst; kind; latency } in
        Hashtbl.add t.arc_index key arc;
        t.succs.(src) <- arc :: t.succs.(src);
        t.preds.(dst) <- arc :: t.preds.(dst);
        account t arc ~fresh:true;
        true
  end

let roots t =
  let acc = ref [] in
  for i = length t - 1 downto 0 do
    if t.n_parents.(i) = 0 then acc := i :: !acc
  done;
  !acc

let leaves t =
  let acc = ref [] in
  for i = length t - 1 downto 0 do
    if t.n_children.(i) = 0 then acc := i :: !acc
  done;
  !acc

let anchor_terminator t =
  let n = length t in
  if n > 1 && (Insn.is_branch t.insns.(n - 1) || Insn.is_call t.insns.(n - 1))
  then
    for i = 0 to n - 2 do
      if t.n_children.(i) = 0 then
        ignore (add_arc t ~src:i ~dst:(n - 1) ~kind:Dep.Ctl ~latency:1)
    done

let iter_arcs f t = Array.iter (fun arcs -> List.iter f arcs) t.succs

let arcs t =
  let acc = ref [] in
  iter_arcs (fun a -> acc := a :: !acc) t;
  !acc

(** The pre-arena resource table: one heap record per resource with a
    boxed definition option and a use list, plus a memory-entry list for
    alias scans. *)
module Table = struct
  type entry = {
    resource : Resource.t;
    mutable def_ : (int * int) option;  (* node index, def position *)
    mutable uses : (int * int) list;    (* node index, use position *)
  }

  type table = {
    strategy : Disambiguate.t;
    entries : entry Resource.Tbl.t;
    mutable mem_entries : entry list;
  }

  let create strategy =
    { strategy; entries = Resource.Tbl.create 64; mem_entries = [] }

  let entry t res =
    match Resource.Tbl.find_opt t.entries res with
    | Some e -> e
    | None ->
        let e = { resource = res; def_ = None; uses = [] } in
        Resource.Tbl.add t.entries res e;
        if Resource.is_memory res then t.mem_entries <- e :: t.mem_entries;
        e

  let cross_aliasing t res =
    if t.strategy = Disambiguate.Symbolic then []
    else if Resource.is_memory res then
      List.filter
        (fun e ->
          not (Resource.equal e.resource res)
          && Disambiguate.may_alias t.strategy res e.resource)
        t.mem_entries
    else []

  let uses_ascending e = List.sort (fun (a, _) (b, _) -> Int.compare a b) e.uses
end

(** The pre-arena forward table builder, verbatim, against this legacy
    structure — the [bench dag] allocation yardstick. *)
let build_table_fwd (opts : Opts.t) (block : Ds_cfg.Block.t) =
  let insns = block.Ds_cfg.Block.insns in
  let dag = create ~model:opts.model insns in
  let table = Table.create opts.strategy in
  let n = Array.length insns in
  for j = 0 to n - 1 do
    let child = insns.(j) in
    (* process resources used *)
    List.iter
      (fun (res, use_pos) ->
        let res = Disambiguate.canonical opts.strategy res in
        let raw_from (e : Table.entry) =
          match e.def_ with
          | Some (d, def_pos) when d <> j ->
              let latency =
                opts.model.Latency.raw ~parent:insns.(d) ~def_pos
                  ~res:e.resource ~child ~use_pos
              in
              ignore (add_arc dag ~src:d ~dst:j ~kind:Dep.Raw ~latency)
          | Some _ | None -> ()
        in
        let own = Table.entry table res in
        raw_from own;
        List.iter raw_from (Table.cross_aliasing table res);
        own.uses <- (j, use_pos) :: own.uses)
      (Insn.uses_with_pos child);
    (* process resources defined *)
    List.iter
      (fun (res, def_pos) ->
        let res = Disambiguate.canonical opts.strategy res in
        let war_from_uses uses =
          List.iter
            (fun (u, _) ->
              if u <> j then begin
                let latency =
                  opts.model.Latency.war ~parent:insns.(u) ~res ~child
                in
                ignore (add_arc dag ~src:u ~dst:j ~kind:Dep.War ~latency)
              end)
            uses
        in
        let waw_from (e : Table.entry) =
          match e.def_ with
          | Some (d, _) when d <> j ->
              let latency =
                opts.model.Latency.waw ~parent:insns.(d) ~res:e.resource ~child
              in
              ignore (add_arc dag ~src:d ~dst:j ~kind:Dep.Waw ~latency)
          | Some _ | None -> ()
        in
        let own = Table.entry table res in
        let pending = List.filter (fun (u, _) -> u <> j) own.uses in
        if pending <> [] then
          war_from_uses (Table.uses_ascending { own with uses = pending })
        else waw_from own;
        own.uses <- [];
        own.def_ <- Some (j, def_pos);
        List.iter
          (fun (e : Table.entry) ->
            war_from_uses (Table.uses_ascending e);
            waw_from e)
          (Table.cross_aliasing table res))
      (List.mapi (fun pos r -> (r, pos)) (Insn.defs child))
  done;
  if opts.anchor_branch then anchor_terminator dag;
  dag
