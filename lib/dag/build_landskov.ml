(** Landskov-style construction: n² forward with transitive-arc avoidance.

    "The algorithm presented by Landskov, et al., is a modification of the
    n**2 forward algorithm; it examines leaves first and prunes away any
    ancestors whenever a dependency is observed" (§2).  We scan candidates
    from the most recent instruction backward, and once a dependency on
    node [i] is found, [i] and all of [i]'s ancestors are excluded — they
    are already transitively ordered before the new node.  The result is a
    transitively reduced DAG.

    The ancestor sets live in one bit matrix (row [i] = ancestors of
    node [i]); an extra scratch row holds the per-node covered set, so
    the pruning bookkeeping is row-OR merges with zero per-pair
    allocation.

    The paper *recommends against* this treatment (conclusion 3): Figure 1
    shows a pruned direct RAW arc whose latency information cannot be
    recovered through the retained WAR-then-RAW path.  This builder exists
    so the bench can demonstrate exactly that. *)

(* covered-candidate skips: each is a transitively ordered parent whose
   (potential) direct arc the pruning suppressed — the quantity the
   paper's conclusion 3 is about *)
let pruned_counter = Ds_obs.Metrics.counter "dag.transitive_arcs_pruned"

let build (opts : Opts.t) (block : Ds_cfg.Block.t) =
  let insns = block.Ds_cfg.Block.insns in
  let dag = Dag.create ~model:opts.model insns in
  let sums = Pairdep.summarize_block opts.strategy insns in
  let n = Array.length insns in
  (* rows 0..n-1: ancestors.(i), complete once i is processed; row n is
     the covered scratch row, cleared per child *)
  let anc = Ds_util.Bitset.Matrix.create ~rows:(n + 1) ~cols:(max n 1) in
  let covered = n in
  for j = 1 to n - 1 do
    Ds_util.Bitset.Matrix.clear_row anc covered;
    for i = j - 1 downto 0 do
      if Ds_util.Bitset.Matrix.mem anc covered i then
        Ds_obs.Metrics.incr pruned_counter
      else begin
        let pk =
          Pairdep.strongest_packed sums ~model:opts.model
            ~strategy:opts.strategy insns i j
        in
        if pk >= 0 then begin
          ignore
            (Dag.add_arc dag ~src:i ~dst:j ~kind:(Pairdep.kind_of_packed pk)
               ~latency:(Pairdep.latency_of_packed pk));
          Ds_util.Bitset.Matrix.set anc covered i;
          Ds_util.Bitset.Matrix.union_rows anc ~into:covered ~from:i;
          Ds_util.Bitset.Matrix.set anc j i;
          Ds_util.Bitset.Matrix.union_rows anc ~into:j ~from:i
        end
      end
    done
  done;
  if opts.anchor_branch then Dag.anchor_terminator dag;
  dag
