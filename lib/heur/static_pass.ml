(** The intermediate heuristic calculation step (paper §4).

    Computes every static annotation left undetermined after DAG
    construction.  Forward-pass heuristics (max path/delay from root, EST)
    are computed by a forward walk; backward-pass heuristics (max
    path/delay to leaf, LST, slack, descendant measures) by a backward
    walk.  The backward walk can traverse either a reverse walk of the
    instruction list or the level lists of [Level] — the paper's
    conclusion 4 is that the two are equivalent in cost and result, which
    the bench measures and a property test checks. *)

open Ds_machine

type traversal = Reverse_walk | Level_lists

(* Forward-pass annotations: parents are always visited before children
   because arcs go from lower to higher index. *)
let forward_pass dag (annot : Annot.t) =
  let n = Ds_dag.Dag.length dag in
  for j = 0 to n - 1 do
    List.iter
      (fun (a : Ds_dag.Dag.arc) ->
        annot.max_path_from_root.(j) <-
          max annot.max_path_from_root.(j) (annot.max_path_from_root.(a.src) + 1);
        annot.max_delay_from_root.(j) <-
          max annot.max_delay_from_root.(j)
            (annot.max_delay_from_root.(a.src) + a.latency);
        annot.est.(j) <- max annot.est.(j) (annot.est.(a.src) + a.latency))
      (Ds_dag.Dag.preds dag j)
  done

(* Backward-pass annotations for one node, assuming all its children are
   already final. *)
let backward_visit dag (annot : Annot.t) ~critical_path i =
  let exec = annot.exec_time.(i) in
  annot.max_delay_to_leaf.(i) <- exec;
  annot.lst.(i) <- critical_path - exec;
  List.iter
    (fun (a : Ds_dag.Dag.arc) ->
      annot.max_path_to_leaf.(i) <-
        max annot.max_path_to_leaf.(i) (annot.max_path_to_leaf.(a.dst) + 1);
      annot.max_delay_to_leaf.(i) <-
        max annot.max_delay_to_leaf.(i) (annot.max_delay_to_leaf.(a.dst) + a.latency);
      annot.lst.(i) <- min annot.lst.(i) (annot.lst.(a.dst) - a.latency))
    (Ds_dag.Dag.succs dag i);
  annot.slack.(i) <- annot.lst.(i) - annot.est.(i)

(* Descendant measures: population counts over reachability bit maps, as
   the paper recommends ("the #descendants is then merely the population
   count on the reachability bit map minus one").  Reuses maps a builder
   left on the DAG, else computes them. *)
let descendant_measures dag (annot : Annot.t) =
  match Ds_dag.Dag.reach_matrix dag with
  | Some m ->
      (* fast path: population counts and row scans straight off the
         builder's contiguous bit matrix, no per-node set materialization *)
      for i = 0 to Ds_util.Bitset.Matrix.rows m - 1 do
        annot.num_descendants.(i) <- Ds_util.Bitset.Matrix.row_cardinal m i - 1;
        let sum = ref 0 in
        Ds_util.Bitset.Matrix.iter_row
          (fun d -> if d <> i then sum := !sum + annot.exec_time.(d))
          m i;
        annot.sum_exec_of_descendants.(i) <- !sum
      done
  | None ->
      let maps = Ds_dag.Closure.descendants dag in
      Array.iteri
        (fun i map ->
          annot.num_descendants.(i) <- Ds_util.Bitset.cardinal map - 1;
          let sum = ref 0 in
          Ds_util.Bitset.iter
            (fun d -> if d <> i then sum := !sum + annot.exec_time.(d))
            map;
          annot.sum_exec_of_descendants.(i) <- !sum)
        maps

(** Which optional (and costly) annotation groups to compute.  The
    path/delay/EST/LST/slack annotations are always computed; descendant
    measures (population counts over reachability maps, O(n²) bits) and
    register-usage measures are only needed by algorithms that rank with
    them. *)
type requirements = { descendants : bool; registers : bool }

let all_requirements = { descendants = true; registers = true }

(** The requirements implied by a set of heuristics. *)
let requirements_of heuristics =
  List.fold_left
    (fun acc (h : Heuristic.t) ->
      match h with
      | Heuristic.Num_descendants | Heuristic.Sum_exec_of_descendants ->
          { acc with descendants = true }
      | Heuristic.Registers_born | Heuristic.Registers_killed
      | Heuristic.Liveness | Heuristic.Birthing_instruction ->
          { acc with registers = true }
      | _ -> acc)
    { descendants = false; registers = false }
    heuristics

(** Compute the static annotation set for a DAG.  [live_out] feeds the
    register-usage heuristics (default: every register escapes the
    block); [requirements] trims the costly annotation groups (default:
    compute everything). *)
let compute ?(traversal = Reverse_walk) ?live_out
    ?(requirements = all_requirements) dag =
  let n = Ds_dag.Dag.length dag in
  let annot = Annot.create n in
  let model = Ds_dag.Dag.model dag in
  for i = 0 to n - 1 do
    annot.exec_time.(i) <- model.Latency.exec_time (Ds_dag.Dag.insn dag i)
  done;
  forward_pass dag annot;
  (* LST seeds from the critical path length through a virtual dummy leaf *)
  let critical_path = ref 0 in
  for i = 0 to n - 1 do
    critical_path := max !critical_path (annot.est.(i) + annot.exec_time.(i))
  done;
  let critical_path = !critical_path in
  (match traversal with
  | Reverse_walk ->
      for i = n - 1 downto 0 do
        backward_visit dag annot ~critical_path i
      done
  | Level_lists ->
      let levels = Level.compute dag in
      Level.iter_backward (backward_visit dag annot ~critical_path) levels);
  if requirements.descendants then descendant_measures dag annot;
  if requirements.registers then begin
    let regs =
      match live_out with
      | Some f ->
          Liveness.compute ~live_out:f (Array.init n (Ds_dag.Dag.insn dag))
      | None -> Liveness.compute (Array.init n (Ds_dag.Dag.insn dag))
    in
    Array.blit regs.Liveness.born 0 annot.registers_born 0 n;
    Array.blit regs.Liveness.killed 0 annot.registers_killed 0 n;
    Array.blit regs.Liveness.net 0 annot.liveness 0 n
  end;
  Annot.with_critical_path annot critical_path

(** [compute_for heuristics dag] computes only what the given heuristics
    need — what a scheduler's intermediate pass would actually run. *)
let compute_for ?traversal ?live_out heuristics dag =
  compute ?traversal ?live_out ~requirements:(requirements_of heuristics) dag

(** Only the backward-pass annotations (used when timing the traversal
    strategies in isolation, §4). *)
let backward_only ?(traversal = Reverse_walk) dag =
  let n = Ds_dag.Dag.length dag in
  let annot = Annot.create n in
  let model = Ds_dag.Dag.model dag in
  for i = 0 to n - 1 do
    annot.exec_time.(i) <- model.Latency.exec_time (Ds_dag.Dag.insn dag i)
  done;
  (match traversal with
  | Reverse_walk ->
      for i = n - 1 downto 0 do
        backward_visit dag annot ~critical_path:0 i
      done
  | Level_lists ->
      let levels = Level.compute dag in
      Level.iter_backward (backward_visit dag annot ~critical_path:0) levels);
  annot
