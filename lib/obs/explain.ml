(** Decision provenance: per-step decision traces and a corpus-level
    decisiveness registry.  See explain.mli for the contract. *)

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* decision traces *)

type step = { heuristic : string; best : int; survivors : int list }

type decision = {
  block : int;
  strategy : string;
  time : int;
  candidates : int list;
  steps : step list;
  chosen : int;
  tie_break : bool;
}

let ints l = Json.List (List.map (fun i -> Json.Int i) l)

let step_to_json (s : step) =
  Json.Obj
    [ ("heuristic", Json.String s.heuristic);
      ("best", Json.Int s.best);
      ("survivors", ints s.survivors) ]

let decision_to_json (d : decision) =
  Json.Obj
    [ ("block", Json.Int d.block);
      ("strategy", Json.String d.strategy);
      ("time", Json.Int d.time);
      ("candidates", ints d.candidates);
      ("steps", Json.List (List.map step_to_json d.steps));
      ("chosen", Json.Int d.chosen);
      ("tie_break", Json.Bool d.tie_break) ]

let ( let* ) = Result.bind

let decode_int ~path = function
  | Json.Int i -> Ok i
  | v ->
      Json.decode_error ~path
        (Printf.sprintf "expected an int, found %s" (Json.type_name v))

let get_bool ~path k json =
  match Json.member k json with
  | Some (Json.Bool b) -> Ok b
  | Some v ->
      Json.decode_error ~path:(path @ [ k ])
        (Printf.sprintf "expected a bool, found %s" (Json.type_name v))
  | None -> Json.decode_error ~path:(path @ [ k ]) "missing field"

let step_of_json ~path json =
  let* heuristic = Json.get_string ~path "heuristic" json in
  let* best = Json.get_int ~path "best" json in
  let* survivors = Json.get_list ~path "survivors" decode_int json in
  Ok { heuristic; best; survivors }

let decision_of_json ?(path = []) json =
  let* block = Json.get_int ~path "block" json in
  let* strategy = Json.get_string ~path "strategy" json in
  let* time = Json.get_int ~path "time" json in
  let* candidates = Json.get_list ~path "candidates" decode_int json in
  let* steps = Json.get_list ~path "steps" step_of_json json in
  let* chosen = Json.get_int ~path "chosen" json in
  let* tie_break = get_bool ~path "tie_break" json in
  Ok { block; strategy; time; candidates; steps; chosen; tie_break }

let decisions_to_jsonl ds =
  String.concat ""
    (List.map (fun d -> Json.to_string (decision_to_json d) ^ "\n") ds)

let decisions_of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (n + 1) acc rest
        else begin
          match Json.of_string line with
          | Error e -> Error (Printf.sprintf "line %d: %s" n e)
          | Ok json -> (
              match decision_of_json json with
              | Error e ->
                  Error
                    (Printf.sprintf "line %d: %s" n (Json.error_to_string e))
              | Ok d -> go (n + 1) (d :: acc) rest)
        end
  in
  go 1 [] lines

(* ------------------------------------------------------------------ *)
(* decisiveness registry *)

type rank_stat = {
  rank : int;
  heuristic : string;
  consulted : int;
  decided : int;
  eliminated : int;
}

type strategy_stat = {
  signature : string;
  keys : string list;
  decisions : int;
  forced : int;
  tie_breaks : int;
  overruled : int;
  ranks : rank_stat list;
}

type stats = strategy_stat list

(* One cell per (domain, signature).  Unlike Metrics handles, which are
   module-level lets, signatures arrive dynamically, so each domain owns
   a hashtable of cells; the tables themselves are registered into a
   global list under the mutex so [snapshot]/[reset] can reach them. *)
type cell = {
  ckeys : string array;
  mutable cdecisions : int;
  mutable cforced : int;
  mutable cties : int;
  mutable coverruled : int;
  cconsulted : int array;
  cdecided : int array;
  celiminated : int array;
}

let registry_mutex = Mutex.create ()
let all_tables : (string, cell) Hashtbl.t list ref = ref []

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let dls_key : (string, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let tbl = Hashtbl.create 8 in
      with_registry (fun () -> all_tables := tbl :: !all_tables);
      tbl)

let fresh_cell keys =
  let n = Array.length keys in
  {
    ckeys = keys;
    cdecisions = 0;
    cforced = 0;
    cties = 0;
    coverruled = 0;
    cconsulted = Array.make n 0;
    cdecided = Array.make n 0;
    celiminated = Array.make n 0;
  }

let find_cell ~signature ~keys =
  let tbl = Domain.DLS.get dls_key in
  match Hashtbl.find_opt tbl signature with
  | Some c -> c
  | None ->
      let c = fresh_cell (Array.of_list keys) in
      Hashtbl.add tbl signature c;
      c

let record_into c ~candidates ~survivor_counts ~forced ~tie_break ~overruled =
  c.cdecisions <- c.cdecisions + 1;
  if forced then c.cforced <- c.cforced + 1
  else begin
    if tie_break then c.cties <- c.cties + 1;
    if overruled then c.coverruled <- c.coverruled + 1;
    let n = Array.length c.ckeys in
    let rec walk i prev = function
      | [] ->
          (* the last consulted rank settled it iff it narrowed to one
             survivor and the result stood (no tie-break, no priority-
             weight override of the lexicographic order) *)
          if i > 0 && i <= n && prev = 1 && (not tie_break) && not overruled
          then c.cdecided.(i - 1) <- c.cdecided.(i - 1) + 1
      | cur :: rest ->
          if i < n then begin
            c.cconsulted.(i) <- c.cconsulted.(i) + 1;
            c.celiminated.(i) <- c.celiminated.(i) + max 0 (prev - cur)
          end;
          walk (i + 1) cur rest
    in
    walk 0 candidates survivor_counts
  end

let observe ~signature ~keys ~candidates ~survivor_counts ~forced ~tie_break
    ~overruled () =
  if Atomic.get enabled_flag then
    record_into
      (find_cell ~signature ~keys)
      ~candidates ~survivor_counts ~forced ~tie_break ~overruled

(* hot-path handle: resolve the domain-local accumulator once, then
   record with no hashing or gating (see the mli) *)
let cell ~signature ~keys = find_cell ~signature ~keys

let record c ~candidates ~survivor_counts ~forced ~tie_break ~overruled =
  record_into c ~candidates ~survivor_counts ~forced ~tie_break ~overruled

(* ------------------------------------------------------------------ *)
(* snapshots *)

let add_cell (dst : cell) (src : cell) =
  dst.cdecisions <- dst.cdecisions + src.cdecisions;
  dst.cforced <- dst.cforced + src.cforced;
  dst.cties <- dst.cties + src.cties;
  dst.coverruled <- dst.coverruled + src.coverruled;
  let n = min (Array.length dst.ckeys) (Array.length src.ckeys) in
  for i = 0 to n - 1 do
    dst.cconsulted.(i) <- dst.cconsulted.(i) + src.cconsulted.(i);
    dst.cdecided.(i) <- dst.cdecided.(i) + src.cdecided.(i);
    dst.celiminated.(i) <- dst.celiminated.(i) + src.celiminated.(i)
  done

let stat_of_cell signature (c : cell) =
  {
    signature;
    keys = Array.to_list c.ckeys;
    decisions = c.cdecisions;
    forced = c.cforced;
    tie_breaks = c.cties;
    overruled = c.coverruled;
    ranks =
      List.init (Array.length c.ckeys) (fun i ->
          {
            rank = i + 1;
            heuristic = c.ckeys.(i);
            consulted = c.cconsulted.(i);
            decided = c.cdecided.(i);
            eliminated = c.celiminated.(i);
          });
  }

(* Empty cells (decisions = 0) are dropped, so a snapshot is independent
   of which signatures merely registered — same zero-dropping discipline
   as Metrics.snapshot. *)
let snapshot () =
  with_registry (fun () ->
      let merged : (string, cell) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun tbl ->
          Hashtbl.iter
            (fun signature c ->
              match Hashtbl.find_opt merged signature with
              | Some dst -> add_cell dst c
              | None ->
                  let dst = fresh_cell (Array.copy c.ckeys) in
                  add_cell dst c;
                  Hashtbl.add merged signature dst)
            tbl)
        !all_tables;
      Hashtbl.fold
        (fun signature c acc ->
          if c.cdecisions = 0 then acc else stat_of_cell signature c :: acc)
        merged []
      |> List.sort (fun a b -> compare a.signature b.signature))

let reset () =
  with_registry (fun () -> List.iter Hashtbl.reset !all_tables)

let absorb (s : stats) =
  List.iter
    (fun st ->
      let c = find_cell ~signature:st.signature ~keys:st.keys in
      c.cdecisions <- c.cdecisions + st.decisions;
      c.cforced <- c.cforced + st.forced;
      c.cties <- c.cties + st.tie_breaks;
      c.coverruled <- c.coverruled + st.overruled;
      let n = Array.length c.ckeys in
      List.iter
        (fun r ->
          let i = r.rank - 1 in
          if i >= 0 && i < n then begin
            c.cconsulted.(i) <- c.cconsulted.(i) + r.consulted;
            c.cdecided.(i) <- c.cdecided.(i) + r.decided;
            c.celiminated.(i) <- c.celiminated.(i) + r.eliminated
          end)
        st.ranks)
    s

let merge (a : stats) (b : stats) =
  let tbl : (string, cell) Hashtbl.t = Hashtbl.create 8 in
  let put st =
    let c =
      match Hashtbl.find_opt tbl st.signature with
      | Some c -> c
      | None ->
          let c = fresh_cell (Array.of_list st.keys) in
          Hashtbl.add tbl st.signature c;
          c
    in
    c.cdecisions <- c.cdecisions + st.decisions;
    c.cforced <- c.cforced + st.forced;
    c.cties <- c.cties + st.tie_breaks;
    c.coverruled <- c.coverruled + st.overruled;
    let n = Array.length c.ckeys in
    List.iter
      (fun r ->
        let i = r.rank - 1 in
        if i >= 0 && i < n then begin
          c.cconsulted.(i) <- c.cconsulted.(i) + r.consulted;
          c.cdecided.(i) <- c.cdecided.(i) + r.decided;
          c.celiminated.(i) <- c.celiminated.(i) + r.eliminated
        end)
      st.ranks
  in
  List.iter put a;
  List.iter put b;
  Hashtbl.fold
    (fun signature c acc ->
      if c.cdecisions = 0 then acc else stat_of_cell signature c :: acc)
    tbl []
  |> List.sort (fun x y -> compare x.signature y.signature)

let equal (a : stats) (b : stats) = a = b

let never_consulted (st : strategy_stat) =
  List.filter_map
    (fun r -> if r.consulted = 0 then Some r.heuristic else None)
    st.ranks

(* ------------------------------------------------------------------ *)
(* JSON (schema in docs/FORMAT.md, "decisiveness") *)

let rank_to_json (r : rank_stat) =
  Json.Obj
    [ ("rank", Json.Int r.rank);
      ("heuristic", Json.String r.heuristic);
      ("consulted", Json.Int r.consulted);
      ("decided", Json.Int r.decided);
      ("eliminated", Json.Int r.eliminated) ]

let strategy_to_json (st : strategy_stat) =
  Json.Obj
    [ ("signature", Json.String st.signature);
      ("keys", Json.List (List.map (fun k -> Json.String k) st.keys));
      ("decisions", Json.Int st.decisions);
      ("forced", Json.Int st.forced);
      ("tie_breaks", Json.Int st.tie_breaks);
      ("overruled", Json.Int st.overruled);
      ("ranks", Json.List (List.map rank_to_json st.ranks)) ]

let to_json (s : stats) = Json.List (List.map strategy_to_json s)

let rank_of_json ~path json =
  let* rank = Json.get_int ~path "rank" json in
  let* heuristic = Json.get_string ~path "heuristic" json in
  let* consulted = Json.get_int ~path "consulted" json in
  let* decided = Json.get_int ~path "decided" json in
  let* eliminated = Json.get_int ~path "eliminated" json in
  Ok { rank; heuristic; consulted; decided; eliminated }

let strategy_of_json ~path json =
  let* signature = Json.get_string ~path "signature" json in
  let* keys = Json.get_list ~path "keys" Json.decode_string json in
  let* decisions = Json.get_int ~path "decisions" json in
  let* forced = Json.get_int ~path "forced" json in
  let* tie_breaks = Json.get_int ~path "tie_breaks" json in
  let* overruled = Json.get_int ~path "overruled" json in
  let* ranks = Json.get_list ~path "ranks" rank_of_json json in
  Ok { signature; keys; decisions; forced; tie_breaks; overruled; ranks }

let of_json ?(path = []) json =
  match json with
  | Json.List items ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match
              strategy_of_json ~path:(path @ [ Json.index_seg "" i ]) item
            with
            | Error e -> Error e
            | Ok st -> go (i + 1) (st :: acc) rest)
      in
      go 0 [] items
  | v ->
      Json.decode_error ~path
        (Printf.sprintf "expected a list, found %s" (Json.type_name v))
