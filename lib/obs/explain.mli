(** Decision provenance for the scheduling engine.

    The paper's contribution is the heuristic layer — Table 1's 26
    heuristics combined by Table 2's ranked orderings — yet a pipeline
    run normally reports only the resulting schedule.  This module makes
    the {e decisions} observable, at two granularities:

    - {e decision traces}: one record per scheduling step, carrying the
      ready candidates, the winnowing trail (which heuristic was
      consulted, its best value, who survived) and the chosen node —
      serialized as JSONL with a total typed reader
      ({!decision_to_json} / {!decisions_of_jsonl});
    - {e decisiveness statistics}: a process-wide registry aggregating,
      per engine configuration ("strategy signature") and per heuristic
      rank, how often the rank was consulted, how many candidates it
      eliminated, and how often it alone settled the choice — plus how
      often the program-order tie-break fired, how many decisions were
      forced (a single ready candidate) and how many were overruled by
      priority-weight overflow.

    Like every observability layer in this tree the registry is
    atomics-gated off by default — a disabled {!observe} is one atomic
    read, schedules and reports are byte-identical — and sharded into
    per-domain cells on the hot path (the {!Metrics} idiom), merged by
    {!snapshot} once the pool has quiesced.  Fleet workers ship their
    snapshot home inside the report JSON and the orchestrator {!absorb}s
    it, so a multi-process corpus run still yields one statistics block.

    This module is generic over the heuristic kit: heuristics are
    identified by their display strings, so [ds_obs] stays at the bottom
    of the dependency tree.  [Ds_sched.Engine] is the producer. *)

(** {1 Enablement} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** {1 Decision traces}

    Schema in docs/FORMAT.md ("decision trace"). *)

(** One consulted rank: the heuristic's display name, the best signed
    value among the candidates it saw, and the surviving node ids. *)
type step = { heuristic : string; best : int; survivors : int list }

(** One scheduling step.  [steps] is the winnowing trail in rank order
    (empty when the decision was forced by a single ready candidate);
    [tie_break] reports that the trail left several survivors and the
    program-order fallback chose. *)
type decision = {
  block : int;                  (** basic-block id *)
  strategy : string;            (** engine-config signature *)
  time : int;                   (** issue cycle within the block *)
  candidates : int list;        (** ready set, ascending node ids *)
  steps : step list;
  chosen : int;
  tie_break : bool;
}

val decision_to_json : decision -> Json.t

(** Total over arbitrary JSON; a typed error names the offending
    field. *)
val decision_of_json :
  ?path:string list -> Json.t -> (decision, Json.error) result

(** One JSON object per line, in order. *)
val decisions_to_jsonl : decision list -> string

(** Strict line-by-line reader; the error carries the 1-based line
    number.  Blank lines are skipped. *)
val decisions_of_jsonl : string -> (decision list, string) result

(** {1 Decisiveness statistics} *)

type rank_stat = {
  rank : int;                   (** 1-based position in the key order *)
  heuristic : string;
  consulted : int;              (** decisions whose trail reached it *)
  decided : int;                (** it left exactly one survivor *)
  eliminated : int;             (** candidates it removed, summed *)
}

type strategy_stat = {
  signature : string;
  keys : string list;           (** rank order, display names *)
  decisions : int;              (** total, including forced ones *)
  forced : int;                 (** single ready candidate, no consult *)
  tie_breaks : int;             (** program-order fallback fired *)
  overruled : int;              (** priority weights beat the rank order *)
  ranks : rank_stat list;       (** one per key, rank order *)
}

type stats = strategy_stat list

(** Record one decision's shape into the calling domain's cell.  A no-op
    unless {!enabled}.  [survivor_counts] is the surviving-candidate
    count after each consulted rank (a prefix of the key order);
    [candidates] is the ready-set size before any rank.  Forced
    decisions pass [survivor_counts = []] and [forced:true]. *)
val observe :
  signature:string ->
  keys:string list ->
  candidates:int ->
  survivor_counts:int list ->
  forced:bool ->
  tie_break:bool ->
  overruled:bool ->
  unit ->
  unit

(** {2 Hot-path handle}

    {!observe} re-resolves the strategy's accumulator on every call
    (a domain-local hash lookup on the signature string).  A scheduling
    loop that records one decision per issued instruction can resolve
    the accumulator once per block instead: [cell] returns the calling
    domain's accumulator, and [record] updates it with no hashing and
    no gating — the caller checks {!enabled} itself, once.  A cell must
    only be used on the domain that created it. *)

type cell

val cell : signature:string -> keys:string list -> cell

val record :
  cell ->
  candidates:int ->
  survivor_counts:int list ->
  forced:bool ->
  tie_break:bool ->
  overruled:bool ->
  unit

(** Merged view over every domain's cells, sorted by signature.
    Exact once recording domains have quiesced (pool joined), like
    {!Metrics.snapshot}. *)
val snapshot : unit -> stats

(** Drop all recorded statistics (the enabled state is unchanged). *)
val reset : unit -> unit

(** Add a shipped snapshot into the calling domain's cells.  Not gated
    on {!enabled} — absorbing a worker's statistics is aggregation, not
    instrumentation. *)
val absorb : stats -> unit

(** Pure merge of two snapshots (signature-keyed; rank lists must agree
    on keys where signatures collide, which holds by construction since
    the signature embeds the key order). *)
val merge : stats -> stats -> stats

val equal : stats -> stats -> bool

(** Keys a strategy ranked but no decision ever consulted — dead weight
    in the rank order (or proof the earlier ranks always settle it). *)
val never_consulted : strategy_stat -> string list

(** JSON round trip (schema in docs/FORMAT.md, "decisiveness"). *)
val to_json : stats -> Json.t

val of_json : ?path:string list -> Json.t -> (stats, Json.error) result
