(** Time-windowed RED metrics over epoch-stamped ring slots.  See
    window.mli for the contract. *)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

type slot = {
  mutable epoch : int; (* floor (ts / slot_s); -1 = never written *)
  mutable count : int;
  mutable errors : int;
  mutable sum : int;
  buckets : int array; (* Metrics.n_buckets log buckets *)
}

type t = {
  w_name : string;
  w_slot_s : float;
  w_slots : slot array;
  w_lock : Mutex.t;
}

let create ?(slots = 64) ?(slot_s = 1.0) name =
  let slots = max 1 slots in
  let slot_s = if Float.is_finite slot_s && slot_s > 0.0 then slot_s else 1.0 in
  { w_name = name;
    w_slot_s = slot_s;
    w_lock = Mutex.create ();
    w_slots =
      Array.init slots (fun _ ->
          { epoch = -1; count = 0; errors = 0; sum = 0;
            buckets = Array.make Metrics.n_buckets 0 }) }

let name t = t.w_name
let span_s t = t.w_slot_s *. float_of_int (Array.length t.w_slots)

let clear_slot s =
  s.epoch <- -1;
  s.count <- 0;
  s.errors <- 0;
  s.sum <- 0;
  Array.fill s.buckets 0 (Array.length s.buckets) 0

let reset t =
  Mutex.lock t.w_lock;
  Array.iter clear_slot t.w_slots;
  Mutex.unlock t.w_lock

let epoch_of t now = int_of_float (Float.floor (now /. t.w_slot_s))

let with_lock t f =
  Mutex.lock t.w_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.w_lock) f

let observe ?now ?(error = false) t v =
  if Atomic.get enabled then begin
    let now = match now with Some n -> n | None -> Clock.now () in
    let e = epoch_of t now in
    let n = Array.length t.w_slots in
    with_lock t (fun () ->
        let s = t.w_slots.(((e mod n) + n) mod n) in
        if s.epoch <> e then begin
          clear_slot s;
          s.epoch <- e
        end;
        s.count <- s.count + 1;
        if error then s.errors <- s.errors + 1;
        s.sum <- s.sum + max 0 v;
        let i = Metrics.bucket_index v in
        s.buckets.(i) <- s.buckets.(i) + 1)
  end

let observe_s ?now ?error t seconds =
  observe ?now ?error t
    (int_of_float (Float.round (Clock.clamp seconds *. 1e6)))

type stats = {
  name : string;
  window_s : float;
  count : int;
  errors : int;
  rate : float;
  error_ratio : float;
  mean_us : float;
  p50_us : int;
  p95_us : int;
  p99_us : int;
}

let stats ?now t ~window_s =
  let now = match now with Some n -> n | None -> Clock.now () in
  let window_s =
    if Float.is_finite window_s then
      Float.max t.w_slot_s (Float.min window_s (span_s t))
    else span_s t
  in
  let k = int_of_float (Float.ceil (window_s /. t.w_slot_s)) in
  let k = max 1 (min (Array.length t.w_slots) k) in
  let e = epoch_of t now in
  let merged = Array.make Metrics.n_buckets 0 in
  let count = ref 0 and errors = ref 0 and sum = ref 0 in
  with_lock t (fun () ->
      Array.iter
        (fun s ->
          if s.epoch > e - k && s.epoch <= e then begin
            count := !count + s.count;
            errors := !errors + s.errors;
            sum := !sum + s.sum;
            Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) s.buckets
          end)
        t.w_slots);
  let buckets = ref [] in
  for i = Metrics.n_buckets - 1 downto 0 do
    if merged.(i) > 0 then
      buckets := (Metrics.bucket_le i, merged.(i)) :: !buckets
  done;
  let hist =
    { Metrics.name = t.w_name; count = !count; sum = !sum;
      buckets = !buckets }
  in
  { name = t.w_name;
    window_s;
    count = !count;
    errors = !errors;
    rate = float_of_int !count /. window_s;
    error_ratio =
      (if !count = 0 then 0.0
       else float_of_int !errors /. float_of_int !count);
    mean_us =
      (if !count = 0 then 0.0
       else float_of_int !sum /. float_of_int !count);
    p50_us = Metrics.quantile hist 0.50;
    p95_us = Metrics.quantile hist 0.95;
    p99_us = Metrics.quantile hist 0.99 }

let stats_to_json s =
  Json.Obj
    [ ("name", Json.String s.name);
      ("window_s", Json.Float s.window_s);
      ("count", Json.Int s.count);
      ("errors", Json.Int s.errors);
      ("rate", Json.Float s.rate);
      ("error_ratio", Json.Float s.error_ratio);
      ("mean_us", Json.Float s.mean_us);
      ("p50_us", Json.Int s.p50_us);
      ("p95_us", Json.Int s.p95_us);
      ("p99_us", Json.Int s.p99_us) ]

let stats_of_json ?(path = []) json =
  let ( let* ) = Result.bind in
  let* name = Json.get_string ~path "name" json in
  let* window_s = Json.get_float ~path "window_s" json in
  let* count = Json.get_int ~path "count" json in
  let* errors = Json.get_int ~path "errors" json in
  let* rate = Json.get_float ~path "rate" json in
  let* error_ratio = Json.get_float ~path "error_ratio" json in
  let* mean_us = Json.get_float ~path "mean_us" json in
  let* p50_us = Json.get_int ~path "p50_us" json in
  let* p95_us = Json.get_int ~path "p95_us" json in
  let* p99_us = Json.get_int ~path "p99_us" json in
  Ok { name; window_s; count; errors; rate; error_ratio; mean_us;
       p50_us; p95_us; p99_us }
