(** Length-prefixed message framing over file descriptors — the wire
    layer under [schedtool serve]'s Unix-socket protocol.

    A frame is an ASCII decimal byte count, a single ['\n'], then
    exactly that many payload bytes (the payload is JSON in the serve
    protocol, but this layer is content-agnostic).  The explicit length
    makes truncation {e detectable}: a peer that dies mid-frame leaves a
    header promising more bytes than ever arrive, which reads back as
    {!Closed}, never as a silently short payload.

    Reading is stateful (frames arrive back-to-back on a stream), so
    the reader side wraps the descriptor in a buffered {!reader}.  All
    errors are typed values — nothing here raises on malformed input;
    only genuine programming errors ([Invalid_argument]) and unexpected
    [Unix_error]s other than timeouts escape. *)

(** Default maximum accepted payload size (16 MiB) — a frame whose
    header promises more is {!Oversized} and the stream is dead (the
    boundary cannot be trusted). *)
val default_max_bytes : int

(** [write fd s] writes the header and payload, looping over partial
    writes.  Raises [Unix.Unix_error] on a broken pipe or closed peer —
    callers own the connection lifecycle. *)
val write : Unix.file_descr -> string -> unit

type error =
  | Closed            (** EOF before or inside a frame *)
  | Timeout           (** the descriptor's receive timeout expired *)
  | Oversized of int  (** header promised this many bytes, over the cap *)
  | Malformed of string  (** header is not a decimal count + newline *)

val error_to_string : error -> string

type reader

(** [reader fd] wraps [fd] for framed reads; the descriptor is not
    duplicated and stays owned by the caller. *)
val reader : Unix.file_descr -> reader

(** [read ?max_bytes r] blocks for the next complete frame and returns
    its payload.  [Error Timeout] when the descriptor has a receive
    timeout ([SO_RCVTIMEO]) and it expires mid-wait — the stream is
    still positioned at a frame boundary only if no header bytes had
    arrived, so serve treats any timeout as fatal to the connection.
    [Error Closed] on EOF (clean between frames or torn inside one);
    [Error (Oversized n)] / [Error (Malformed _)] on a header that
    cannot be trusted.  After any [Error] the reader must be discarded. *)
val read : ?max_bytes:int -> reader -> (string, error) result

(** [roundtrip s] is the frame encoding of [s] as bytes — header plus
    payload, exactly what {!write} puts on the wire (for tests and for
    hand-rolled clients). *)
val encode : string -> string
