(** Process-wide metrics registry: named counters and log-bucketed
    histograms for the scheduling pipeline's hot paths (arcs added,
    transitive arcs pruned, resource-table probes, ready-list lengths,
    stall cycles, pool latencies).

    Instrumentation sites register a handle once at module
    initialization ([let arcs = Metrics.counter "dag.arcs_added"]) and
    bump it on the hot path ({!incr}/{!add}/{!observe}).  Updates are a
    single [Atomic] read when disabled; when enabled they are plain
    loads/stores on a {e domain-local} cell (one cell per domain per
    handle, via [Domain.DLS]) — no shared atomics, no contended cache
    lines — and {!snapshot} sums the cells.  Safe from any domain;
    never a measurable cost in the disabled (default) state, and never
    observable in report bytes.  A snapshot taken while other domains
    are actively recording is approximate (their latest plain writes
    may not be visible yet); it is exact whenever the recording domains
    have quiesced — e.g. after the pool has joined, which is where
    every snapshot in this tree happens.

    Enabled state, like {!Trace}'s, is per process: [schedtool] enables
    it when [--metrics] (or [--trace]) is given, and fleet workers
    inherit it through the [DAGSCHED_OBS] environment variable, shipping
    their {!snapshot} home inside the worker report for the orchestrator
    to {!absorb}. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

(** Zero every registered counter and histogram (handles stay valid). *)
val reset : unit -> unit

(** {1 Counters} *)

type counter

(** [counter name] returns the process-wide counter registered under
    [name], creating it on first use.  Conventional names are
    dot-namespaced ("dag.arcs_added"). *)
val counter : string -> counter

(** No-op when disabled. *)
val add : counter -> int -> unit

val incr : counter -> unit

(** Current summed value of a counter's cells.  Like {!snapshot}, exact
    once recording domains have quiesced; approximate while they are
    live.  Works whether or not recording is enabled (reads, never
    writes). *)
val value : counter -> int

(** {1 Histograms}

    Log-bucketed: bucket 0 counts values [<= 0], bucket [i >= 1] counts
    values in [[2^(i-1), 2^i - 1]].  Sums clamp negative observations to
    0.  Good enough for latency and length distributions at almost no
    cost; exact quantiles are out of scope. *)

type histogram

val histogram : string -> histogram

(** Record one integer observation.  No-op when disabled. *)
val observe : histogram -> int -> unit

(** Record a duration in seconds as integer microseconds (clamped
    non-negative, {!Clock.clamp}).  No-op when disabled. *)
val observe_s : histogram -> float -> unit

(** {1 Bucketing}

    The log-bucket layout, exported so other histogram consumers
    ({!Window}'s ring slots, Prometheus exposition) bucket identically:
    [bucket_index v] is the bucket for observation [v], [bucket_le i]
    the inclusive upper bound of bucket [i]. *)

val n_buckets : int
val bucket_index : int -> int
val bucket_le : int -> int

(** {1 Snapshots} *)

type hist_snapshot = {
  name : string;
  count : int;
  sum : int;
  buckets : (int * int) list;  (** (inclusive upper bound, count) *)
}

(** Name-sorted, with zero counters and empty histograms dropped — so
    equal workloads produce equal snapshots regardless of registration
    order. *)
type snapshot = {
  counters : (string * int) list;
  histograms : hist_snapshot list;
}

val snapshot : unit -> snapshot

(** Add a snapshot's values into the live registry (creating handles as
    needed).  Not gated on {!is_enabled}: this is the fleet
    orchestrator's explicit merge of a worker's shipped metrics, not
    instrumentation. *)
val absorb : snapshot -> unit

val snapshot_equal : snapshot -> snapshot -> bool

(** {1 Quantile summaries}

    Estimated from the log buckets: a quantile is the inclusive upper
    bound of the bucket where the cumulative count reaches the rank —
    an upper estimate that is exact to within one power of two, which
    is all the bucketing ever promised. *)

(** [quantile h q] for [q] in [[0, 1]] (clamped); [0] on an empty
    histogram. *)
val quantile : hist_snapshot -> float -> int

type hist_summary = {
  name : string;
  count : int;
  sum : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
}

(** One summary per histogram, in the snapshot's (name-sorted) order —
    the data behind the [--metrics] stderr table. *)
val summary : snapshot -> hist_summary list

(** Schema in docs/FORMAT.md ("metrics").  {!snapshot_of_json} is total
    over arbitrary JSON and round trips {!snapshot_to_json} exactly. *)
val snapshot_to_json : snapshot -> Json.t

val snapshot_of_json :
  ?path:string list -> Json.t -> (snapshot, Json.error) result
