(** Structured, leveled JSONL event logging — the third observability
    pillar next to {!Trace} (spans) and {!Metrics} (counters).

    An {e event} is one structured record: timestamp, level, scope
    (["fleet"], ["worker"], ["shard"], ["heartbeat"]), a short stable
    message, and free-form JSON fields.  Events are kept in per-domain
    ring buffers (bounded, lock per ring — never on a shared registry)
    and, when a {e sink} is attached, appended to a JSONL file as one
    line per event.

    {b Crash forensics.}  The sink is an [O_APPEND] file descriptor and
    every event is written with a single [write(2)] — there is no
    userspace buffering to flush, so the log survives SIGKILL, a fleet
    timeout kill, or a power-of-the-process event mid-run: whatever was
    logged before the kill is on disk, whole lines stay whole (POSIX
    atomic appends), and several processes (fleet orchestrator plus all
    its workers) can share one stream.  A reader that hits a torn final
    line uses {!events_of_jsonl_prefix}.

    {b Gating.}  Logging is disabled by default; {!log} costs one atomic
    read until {!set_level} arms it, so report bytes are identical with
    logging off — same discipline as {!Trace}/{!Metrics}.

    {b Heartbeats} are progress events (scope ["heartbeat"]): blocks
    done/total, current phase, resident-set size.  They are gated by
    their own interval ({!set_heartbeat}), not the level threshold, and
    rate-limited at the emission site — a worker ticks once per block
    and the limiter drops all but ~1/interval of them.  The fleet
    orchestrator tails the shared stream ({!tail_create}/{!tail_poll})
    to drive [--progress] and stall detection. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

(** Case-insensitive; [None] on unknown names. *)
val level_of_string : string -> level option

(** {1 Enablement} *)

(** [set_level (Some l)] enables events at severity [>= l];
    [set_level None] disables logging entirely (the default). *)
val set_level : level option -> unit

val level : unit -> level option

(** Would an event at this level be recorded right now? *)
val enabled : level -> bool

(** {1 Events} *)

type event = {
  ts_s : float;                    (** {!Clock.now}, epoch seconds *)
  level : level;
  scope : string;                  (** subsystem, e.g. ["fleet"] *)
  msg : string;                    (** short, stable; details in fields *)
  fields : (string * Json.t) list; (** free-form, context appended *)
  pid : int;                       (** OS process id *)
  tid : int;                       (** OCaml domain id *)
}

(** [log ?fields lvl ~scope msg] records an event when [enabled lvl]:
    into the calling domain's ring, and through the sink if one is
    attached.  Never raises — a failed sink write is dropped (logging
    must not take down the pipeline). *)
val log : ?fields:(string * Json.t) list -> level -> scope:string -> string -> unit

(** Fields appended to every subsequent event from this process (a fleet
    worker sets [("shard", Int n)]).  Replaces the previous context. *)
val set_context : (string * Json.t) list -> unit

(** Ring contents in deterministic order (timestamp, then pid/tid and
    content), oldest first; each ring keeps the most recent events
    (bounded), so this is the in-memory tail, not the full history. *)
val snapshot : unit -> event list

(** Drop ring contents and heartbeat rate-limiter state.  Level, sink
    and context are untouched. *)
val reset : unit -> unit

(** {1 Sink}

    [Sink] is the reusable untorn-line writer underneath the module
    sink: an [O_APPEND] descriptor where each {!Sink.write_line} is a
    single [write(2)] of [line ^ "\n"], so concurrent writers (or a
    SIGKILL mid-run) never tear a line.  The serve daemon's access log
    uses it directly for a stream separate from the event log. *)

module Sink : sig
  type t

  (** [open_ ?append path] opens [path] [O_APPEND] (truncated first
      unless [append], default [true]).  [Error] carries the system
      message. *)
  val open_ : ?append:bool -> string -> (t, string) result

  val path : t -> string

  (** Append [line ^ "\n"] with one [write(2)].  Best-effort: write
      errors are swallowed (logging must not take the service down). *)
  val write_line : t -> string -> unit

  val close : t -> unit
end

(** [set_sink ~append path] opens [path] ([O_APPEND]; truncated first
    unless [append]) and routes every subsequent event to it as one
    JSONL line.  Replaces (and closes) any previous sink.  [Error] with
    the system message when the path cannot be opened. *)
val set_sink : append:bool -> string -> (unit, string) result

val sink_path : unit -> string option

(** Close and detach the sink (no-op without one). *)
val close_sink : unit -> unit

(** {1 Heartbeats} *)

(** Arm heartbeat emission: at most one heartbeat per [interval_s]
    (clamped to [>= 0]) is recorded.  [echo] additionally prints a
    human ["progress: ..."] line on stderr per recorded heartbeat (the
    in-process [--progress] renderer; fleet workers leave it off). *)
val set_heartbeat : ?echo:bool -> interval_s:float -> unit -> unit

val disable_heartbeat : unit -> unit

val heartbeat_enabled : unit -> bool

(** [heartbeat ~phase ~done_ ~total ()] records a progress event (scope
    ["heartbeat"], fields [phase]/[done]/[total]/[rss_kb] plus context)
    subject to the rate limit; [~force:true] bypasses the limit (final
    "done" beats, a sabotaged worker's last gasp).  No-op unless
    {!set_heartbeat} armed it.  Heartbeats bypass the level threshold —
    they are progress data, not diagnostics. *)
val heartbeat : ?force:bool -> phase:string -> done_:int -> total:int -> unit -> unit

(** Resident-set size of this process in kB (Linux [/proc/self/status]
    VmRSS; 0 where unavailable). *)
val rss_kb : unit -> int

(** {1 JSON}

    Schema in docs/FORMAT.md ("log events").  All readers are total
    over arbitrary input and return typed path errors, like every other
    reader in the tree. *)

val event_to_json : event -> Json.t

val event_of_json : ?path:string list -> Json.t -> (event, Json.error) result

(** One event per non-empty line.  Strict: the first malformed line is
    a typed error (path ["line N"], 1-based). *)
val events_of_jsonl : string -> (event list, Json.error) result

(** Forensic reader: parse leading well-formed lines, stop at the first
    malformed or torn one and return it as the leftover ([None] when the
    whole input parsed).  Never errors — this is what reads a log whose
    writer was SIGKILLed mid-line. *)
val events_of_jsonl_prefix : string -> event list * string option

(** {1 Tailing}

    Incremental reader over a growing JSONL file — the fleet
    orchestrator polls the shared stream for worker heartbeats while
    the workers are still writing it. *)

type tail

val tail_create : string -> tail

(** Newly appended complete events since the last poll.  A partial
    final line is buffered until its newline arrives; malformed
    complete lines are skipped.  A file that does not exist yet yields
    [[]] until it appears. *)
val tail_poll : tail -> event list

val tail_close : tail -> unit

(** {1 Cross-process enablement}

    The fleet orchestrator exports these to its workers; {!Obs.init_from_env}
    applies them ([schedtool worker] calls it before any work). *)

(** ["DAGSCHED_LOG"] — sink path (workers open it append-mode). *)
val env_path : string

(** ["DAGSCHED_LOG_LEVEL"] — level name. *)
val env_level : string

(** ["DAGSCHED_HEARTBEAT_S"] — heartbeat interval in seconds. *)
val env_heartbeat : string

(** [KEY=value] bindings describing this process's current sink path,
    level and heartbeat interval — what an orchestrator exports so its
    workers log into the same stream. *)
val env_exports : unit -> string list

(** Apply [DAGSCHED_LOG] / [DAGSCHED_LOG_LEVEL] / [DAGSCHED_HEARTBEAT_S]:
    sink (append mode — the stream is shared), level (defaults to
    [Info] when only a path is given), heartbeat interval.  Unset or
    malformed variables are ignored; a sink that cannot be opened is
    ignored too (a worker must still run). *)
val init_from_env : unit -> unit
