(** Cross-process enablement: [schedtool fleet --trace/--metrics/
    --resource] advertises the observability state to its worker
    children through the [DAGSCHED_OBS] environment variable (a
    comma-separated subset of "trace", "metrics", "resource",
    "explain"), and
    [schedtool worker] re-enables the matching recorders before doing
    any work.  Unknown tokens are ignored.  {!init_from_env} also
    applies {!Log}'s own variables ([DAGSCHED_LOG] /
    [DAGSCHED_LOG_LEVEL] / [DAGSCHED_HEARTBEAT_S]) so a worker joins
    the orchestrator's log stream and heartbeat schedule in the same
    call. *)

let env_var = "DAGSCHED_OBS"

let env_value () =
  match
    ( Trace.enabled (),
      Metrics.is_enabled (),
      Resource.is_enabled (),
      Explain.enabled () )
  with
  | false, false, false, false -> None
  | t, m, r, e ->
      Some
        (String.concat ","
           ((if t then [ "trace" ] else [])
           @ (if m then [ "metrics" ] else [])
           @ (if r then [ "resource" ] else [])
           @ if e then [ "explain" ] else []))

let init_from_env () =
  (match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some s ->
      List.iter
        (fun tok ->
          match String.trim tok with
          | "trace" -> Trace.enable ()
          | "metrics" -> Metrics.enable ()
          | "resource" -> Resource.enable ()
          | "explain" -> Explain.enable ()
          | _ -> ())
        (String.split_on_char ',' s));
  Log.init_from_env ()
