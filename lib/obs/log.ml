(** Structured, leveled JSONL event logging.  See log.mli for the
    contract. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* 4 = disabled sentinel: no level reaches it, so [enabled] is a single
   atomic read + compare in the (default) off state *)
let threshold = Atomic.make 4

let set_level = function
  | None -> Atomic.set threshold 4
  | Some l -> Atomic.set threshold (severity l)

let level () =
  match Atomic.get threshold with
  | 0 -> Some Debug
  | 1 -> Some Info
  | 2 -> Some Warn
  | 3 -> Some Error
  | _ -> None

let enabled l = severity l >= Atomic.get threshold

(* ------------------------------------------------------------------ *)
(* events *)

type event = {
  ts_s : float;
  level : level;
  scope : string;
  msg : string;
  fields : (string * Json.t) list;
  pid : int;
  tid : int;
}

(* per-process context, appended to every event (workers: shard id) *)
let context : (string * Json.t) list Atomic.t = Atomic.make []
let set_context fs = Atomic.set context fs

(* ------------------------------------------------------------------ *)
(* per-domain ring buffers: each domain hashes to one of [n_rings]
   slots, so concurrent domains almost never contend on a lock, and a
   ring bounds memory no matter how chatty a run gets *)

let n_rings = 64
let ring_capacity = 512

type ring = {
  lock : Mutex.t;
  slots : event option array;
  mutable next : int;
  mutable count : int;
}

let rings =
  Array.init n_rings (fun _ ->
      { lock = Mutex.create ();
        slots = Array.make ring_capacity None;
        next = 0; count = 0 })

let ring_push ev =
  let r = rings.((Domain.self () :> int) land (n_rings - 1)) in
  Mutex.lock r.lock;
  r.slots.(r.next) <- Some ev;
  r.next <- (r.next + 1) mod ring_capacity;
  r.count <- min (r.count + 1) ring_capacity;
  Mutex.unlock r.lock

let event_order a b =
  compare
    (a.ts_s, a.pid, a.tid, severity a.level, a.scope, a.msg)
    (b.ts_s, b.pid, b.tid, severity b.level, b.scope, b.msg)

let snapshot () =
  let out = ref [] in
  Array.iter
    (fun r ->
      Mutex.lock r.lock;
      (* oldest first: start at [next] (the overwrite point) *)
      for i = 0 to ring_capacity - 1 do
        match r.slots.((r.next + i) mod ring_capacity) with
        | Some ev -> out := ev :: !out
        | None -> ()
      done;
      Mutex.unlock r.lock)
    rings;
  List.stable_sort event_order (List.rev !out)

(* ------------------------------------------------------------------ *)
(* sink: O_APPEND + one write(2) per line = signal-safe write-through.
   POSIX guarantees O_APPEND writes land whole at the end of the file,
   so orchestrator and workers can share one stream.  [Sink] is the
   reusable untorn-line writer; the module-level sink (below) and the
   serve daemon's access log both build on it. *)

module Sink = struct
  type t = { s_path : string; s_fd : Unix.file_descr }

  let open_ ?(append = true) path =
    let flags =
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      @ if append then [] else [ Unix.O_TRUNC ]
    in
    match Unix.openfile path flags 0o644 with
    | exception Unix.Unix_error (e, _, _) ->
        Stdlib.Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
    | fd -> Ok { s_path = path; s_fd = fd }

  let path t = t.s_path

  let rec write_all fd bytes off len =
    if len > 0 then
      match Unix.write fd bytes off len with
      | n -> if n < len then write_all fd bytes (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          write_all fd bytes off len

  (* best-effort: logging must never take the pipeline down *)
  let write_line t line =
    let b = Bytes.of_string (line ^ "\n") in
    try write_all t.s_fd b 0 (Bytes.length b) with Unix.Unix_error _ -> ()

  let close t = try Unix.close t.s_fd with Unix.Unix_error _ -> ()
end

let sink : Sink.t option Atomic.t = Atomic.make None

let sink_path () = Option.map Sink.path (Atomic.get sink)

let close_sink () =
  match Atomic.exchange sink None with
  | None -> ()
  | Some s -> Sink.close s

let set_sink ~append path =
  match Sink.open_ ~append path with
  | Stdlib.Error _ as e -> e
  | Ok s ->
      close_sink ();
      Atomic.set sink (Some s);
      Ok ()

let sink_write line =
  match Atomic.get sink with None -> () | Some s -> Sink.write_line s line

(* ------------------------------------------------------------------ *)
(* JSON *)

let event_to_json e =
  Json.Obj
    [ ("ts", Json.Float e.ts_s);
      ("level", Json.String (level_to_string e.level));
      ("scope", Json.String e.scope);
      ("msg", Json.String e.msg);
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid);
      ("fields", Json.Obj e.fields) ]

let event_of_json ?(path = []) json =
  let ( let* ) = Result.bind in
  let* ts_s = Json.get_float ~path "ts" json in
  let* level_name = Json.get_string ~path "level" json in
  let* level =
    match level_of_string level_name with
    | Some l -> Ok l
    | None ->
        Json.decode_error ~path:(path @ [ "level" ])
          (Printf.sprintf "unknown level %S" level_name)
  in
  let* scope = Json.get_string ~path "scope" json in
  let* msg = Json.get_string ~path "msg" json in
  (* pid/tid/fields are defaulted so a hand-written or foreign event
     still reads *)
  let* pid =
    match Json.member "pid" json with
    | None -> Ok 0
    | Some _ -> Json.get_int ~path "pid" json
  in
  let* tid =
    match Json.member "tid" json with
    | None -> Ok 0
    | Some _ -> Json.get_int ~path "tid" json
  in
  let* fields =
    match Json.member "fields" json with
    | None -> Ok []
    | Some (Json.Obj fs) -> Ok fs
    | Some v ->
        Json.decode_error ~path:(path @ [ "fields" ])
          (Printf.sprintf "expected an object, found %s" (Json.type_name v))
  in
  Ok { ts_s; level; scope; msg; fields; pid; tid }

let jsonl_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")

let events_of_jsonl text =
  let ( let* ) = Result.bind in
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let path = [ Printf.sprintf "line %d" i ] in
        let* json =
          match Json.of_string line with
          | Ok j -> Ok j
          | Stdlib.Error msg -> Json.decode_error ~path msg
        in
        let* ev = event_of_json ~path json in
        go (ev :: acc) (i + 1) rest
  in
  go [] 1 (jsonl_lines text)

let events_of_jsonl_prefix text =
  let rec go acc = function
    | [] -> (List.rev acc, None)
    | line :: rest -> (
        match Json.of_string line with
        | Stdlib.Error _ -> (List.rev acc, Some line)
        | Ok json -> (
            match event_of_json json with
            | Stdlib.Error _ -> (List.rev acc, Some line)
            | Ok ev -> go (ev :: acc) rest))
  in
  go [] (jsonl_lines text)

(* ------------------------------------------------------------------ *)
(* emission *)

let os_pid = lazy (Unix.getpid ())

let emit ev =
  ring_push ev;
  sink_write (Json.to_string (event_to_json ev))

let make_event ?(fields = []) level ~scope msg =
  { ts_s = Clock.now (); level; scope; msg;
    fields = fields @ Atomic.get context;
    pid = Lazy.force os_pid;
    tid = (Domain.self () :> int) }

let log ?fields level ~scope msg =
  if enabled level then emit (make_event ?fields level ~scope msg)

(* ------------------------------------------------------------------ *)
(* heartbeats *)

let hb_interval = Atomic.make Float.nan (* nan = disarmed *)
let hb_echo = Atomic.make false
(* boxed-float atomic, CAS'd so concurrent domains race to one beat per
   interval instead of all beating at once *)
let hb_last : float Atomic.t = Atomic.make Float.neg_infinity

let set_heartbeat ?(echo = false) ~interval_s () =
  Atomic.set hb_echo echo;
  Atomic.set hb_last Float.neg_infinity;
  Atomic.set hb_interval (Float.max 0.0 interval_s)

let disable_heartbeat () =
  Atomic.set hb_interval Float.nan;
  Atomic.set hb_echo false;
  Atomic.set hb_last Float.neg_infinity

let heartbeat_enabled () = not (Float.is_nan (Atomic.get hb_interval))

let rss_kb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception Sys_error _ -> 0
  | text ->
      let rec find = function
        | [] -> 0
        | line :: rest ->
            if String.starts_with ~prefix:"VmRSS:" line then (
              let digits =
                String.to_seq line
                |> Seq.filter (fun c -> c >= '0' && c <= '9')
                |> String.of_seq
              in
              match int_of_string_opt digits with
              | Some kb -> kb
              | None -> 0)
            else find rest
      in
      find (String.split_on_char '\n' text)

let heartbeat ?(force = false) ~phase ~done_ ~total () =
  let interval = Atomic.get hb_interval in
  if not (Float.is_nan interval) then begin
    let now = Clock.now () in
    let last = Atomic.get hb_last in
    let due = now -. last >= interval in
    (* losing the CAS means another domain just beat; skip unless forced *)
    if force || (due && Atomic.compare_and_set hb_last last now) then begin
      let rss = rss_kb () in
      let ev =
        make_event
          ~fields:
            [ ("phase", Json.String phase);
              ("done", Json.Int done_);
              ("total", Json.Int total);
              ("rss_kb", Json.Int rss) ]
          Info ~scope:"heartbeat" "heartbeat"
      in
      emit ev;
      if Atomic.get hb_echo then
        Printf.eprintf "progress: %d/%d blocks, %s, rss %d MB\n%!" done_ total
          phase (rss / 1024)
    end
  end

(* ------------------------------------------------------------------ *)
(* reset (tests / bench) *)

let reset () =
  Array.iter
    (fun r ->
      Mutex.lock r.lock;
      Array.fill r.slots 0 ring_capacity None;
      r.next <- 0;
      r.count <- 0;
      Mutex.unlock r.lock)
    rings;
  Atomic.set hb_last Float.neg_infinity

(* ------------------------------------------------------------------ *)
(* tailing *)

type tail = {
  t_path : string;
  mutable t_fd : Unix.file_descr option;
  t_buf : Buffer.t;
}

let tail_create path = { t_path = path; t_fd = None; t_buf = Buffer.create 256 }

let tail_close t =
  (match t.t_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.t_fd <- None

let tail_fd t =
  match t.t_fd with
  | Some fd -> Some fd
  | None -> (
      match Unix.openfile t.t_path [ Unix.O_RDONLY ] 0 with
      | fd ->
          t.t_fd <- Some fd;
          Some fd
      | exception Unix.Unix_error _ -> None)

let tail_poll t =
  match tail_fd t with
  | None -> []
  | Some fd ->
      let chunk = Bytes.create 8192 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes t.t_buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        | exception Unix.Unix_error _ -> ()
      in
      drain ();
      (* split off complete lines; keep the partial tail buffered *)
      let data = Buffer.contents t.t_buf in
      let rec split acc start =
        match String.index_from_opt data start '\n' with
        | None ->
            Buffer.clear t.t_buf;
            Buffer.add_substring t.t_buf data start (String.length data - start);
            List.rev acc
        | Some nl ->
            split (String.sub data start (nl - start) :: acc) (nl + 1)
      in
      let lines = split [] 0 in
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else
            match Json.of_string line with
            | Stdlib.Error _ -> None
            | Ok json -> (
                match event_of_json json with
                | Ok ev -> Some ev
                | Stdlib.Error _ -> None))
        lines

(* ------------------------------------------------------------------ *)
(* cross-process enablement *)

let env_path = "DAGSCHED_LOG"
let env_level = "DAGSCHED_LOG_LEVEL"
let env_heartbeat = "DAGSCHED_HEARTBEAT_S"

let env_exports () =
  (match sink_path () with Some p -> [ env_path ^ "=" ^ p ] | None -> [])
  @ (match level () with
    | Some l -> [ env_level ^ "=" ^ level_to_string l ]
    | None -> [])
  @
  let i = Atomic.get hb_interval in
  if Float.is_nan i then [] else [ Printf.sprintf "%s=%g" env_heartbeat i ]

let init_from_env () =
  (match Sys.getenv_opt env_level with
  | Some s -> ( match level_of_string s with Some l -> set_level (Some l) | None -> ())
  | None -> ());
  (match Sys.getenv_opt env_path with
  | None | Some "" -> ()
  | Some path ->
      (* the stream is shared with the orchestrator: append, never
         truncate; a worker that cannot open it still runs *)
      (match set_sink ~append:true path with Ok () -> () | Stdlib.Error _ -> ());
      if level () = None then set_level (Some Info));
  match Sys.getenv_opt env_heartbeat with
  | None | Some "" -> ()
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some i when Float.is_finite i && i >= 0.0 ->
          set_heartbeat ~interval_s:i ()
      | _ -> ())
