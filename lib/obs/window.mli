(** Time-windowed RED metrics (rate / errors / duration) for resident
    services — the fourth observability pillar, built for the serve
    daemon where {!Metrics} histograms are the wrong shape: they
    accumulate forever, so a daemon serving traffic for a week cannot
    answer "what is p99 over the last ten seconds?".

    A window is a ring of {e epoch-stamped slots}, one slot per
    [slot_s] seconds of wall time.  An observation lands in the slot
    for its epoch ([floor (now / slot_s)]); a slot whose stamp is stale
    is recycled in place, so memory is fixed ([slots] × 64 log buckets)
    no matter how long the service runs or how hot it gets.  {!stats}
    merges the slots younger than the requested window into one
    {!Metrics.hist_snapshot} and answers count, error ratio, rate, and
    p50/p95/p99 through the same log-bucket quantile estimator as
    {!Metrics.quantile} — identical bucket layout by construction
    ({!Metrics.bucket_index}/{!Metrics.bucket_le}).

    Same gating discipline as the other pillars: disabled by default,
    {!observe} is a single atomic read when off, and nothing a window
    records is ever observable in report bytes.  Slot updates take a
    per-window mutex — windows live on the service control path (one
    observation per request), not in the scheduling hot loops.

    Tests inject [?now] everywhere wall time is read, so windowed
    behaviour (slot rollover, expiry, partial windows) is exercised
    deterministically. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

type t

(** [create ?slots ?slot_s name] — a ring of [slots] (default [64],
    min 1) buckets of [slot_s] seconds each (default [1.0]); the
    longest answerable window is [slots * slot_s] (64 s covers the
    1s/10s/60s triple the daemon reports). *)
val create : ?slots:int -> ?slot_s:float -> string -> t

val name : t -> string

(** Longest answerable window, [slots * slot_s], in seconds. *)
val span_s : t -> float

(** [observe ?now ?error t v] records one event with integer duration
    [v] (microseconds by convention; negative values clamp to 0 in the
    sum and land in bucket 0, like {!Metrics.observe}).  [~error:true]
    also counts it toward the error ratio.  No-op when disabled. *)
val observe : ?now:float -> ?error:bool -> t -> int -> unit

(** Duration in seconds, recorded as integer microseconds. *)
val observe_s : ?now:float -> ?error:bool -> t -> float -> unit

(** Drop all recorded slots (enablement untouched). *)
val reset : t -> unit

type stats = {
  name : string;
  window_s : float;   (** the window actually answered (clamped) *)
  count : int;        (** events in the window *)
  errors : int;
  rate : float;       (** events per second, [count / window_s] *)
  error_ratio : float;(** [errors / count]; [0.] on an empty window *)
  mean_us : float;    (** [0.] on an empty window *)
  p50_us : int;
  p95_us : int;
  p99_us : int;
}

(** [stats ?now t ~window_s] over the slots covering the last
    [window_s] seconds.  [window_s] is clamped to
    [[slot_s, span_s t]]; the clamped value is reported back in the
    result (so asking a 64 s ring for 120 s answers 64 s and says so).
    The current (partial) slot is included. *)
val stats : ?now:float -> t -> window_s:float -> stats

(** Schema in docs/FORMAT.md ("window stats").  Total reader, exact
    round trip, like every other reader in the tree. *)
val stats_to_json : stats -> Json.t

val stats_of_json : ?path:string list -> Json.t -> (stats, Json.error) result
