(** Process-wide metrics registry: named counters and log-bucketed
    histograms, lock-free on the hot path and a no-op unless enabled.
    See metrics.mli for the contract. *)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* The hot path is sharded per domain: every handle owns a Domain.DLS
   key whose per-domain cell is a plain mutable record, so an enabled
   [incr]/[observe] is ordinary loads and stores on domain-local memory
   — no fetch_and_add, no shared cache line.  A traced corpus run bumps
   metrics ~1M times; the shared-atomic version was a measurable part
   of the 15-25% enabled-mode overhead on a 1-core CI host.  The cost:
   a snapshot taken while other domains are mid-update is approximate
   (plain reads may lag); every snapshot in the tree happens after the
   pool has quiesced (joined), where it is exact. *)

(* Buckets are powers of two: bucket 0 holds values <= 0, bucket i >= 1
   holds [2^(i-1), 2^i - 1].  64 buckets cover the whole int range. *)
let n_buckets = 64

type ccell = { mutable cv : int }

type counter = {
  cname : string;
  ckey : ccell Domain.DLS.key;
  ccells : ccell list ref; (* every domain's cell; guarded by the registry *)
}

type hcell = { mutable hcount : int; mutable hsum : int; hbuckets : int array }

type histogram = {
  hname : string;
  hkey : hcell Domain.DLS.key;
  hcells : hcell list ref;
}

(* Registration happens at module initialization (handles are module-
   level lets at every instrumentation site) but is mutex-protected so a
   late [counter] call from a worker domain stays safe.  The same lock
   guards the per-handle cell lists, which grow when a new domain first
   touches a handle. *)
let registry_mutex = Mutex.create ()
let all_counters : counter list ref = ref []
let all_histograms : histogram list ref = ref []

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counter name =
  with_registry (fun () ->
      match List.find_opt (fun c -> c.cname = name) !all_counters with
      | Some c -> c
      | None ->
          let ccells = ref [] in
          let ckey =
            Domain.DLS.new_key (fun () ->
                let cell = { cv = 0 } in
                with_registry (fun () -> ccells := cell :: !ccells);
                cell)
          in
          let c = { cname = name; ckey; ccells } in
          all_counters := c :: !all_counters;
          c)

let histogram name =
  with_registry (fun () ->
      match List.find_opt (fun h -> h.hname = name) !all_histograms with
      | Some h -> h
      | None ->
          let hcells = ref [] in
          let hkey =
            Domain.DLS.new_key (fun () ->
                let cell =
                  { hcount = 0; hsum = 0; hbuckets = Array.make n_buckets 0 }
                in
                with_registry (fun () -> hcells := cell :: !hcells);
                cell)
          in
          let h = { hname = name; hkey; hcells } in
          all_histograms := h :: !all_histograms;
          h)

let add c n =
  if Atomic.get enabled then begin
    let cell = Domain.DLS.get c.ckey in
    cell.cv <- cell.cv + n
  end

let incr c = add c 1

(* exact once recording domains have quiesced, like [snapshot] *)
let value c =
  with_registry (fun () ->
      List.fold_left (fun a cell -> a + cell.cv) 0 !(c.ccells))

let bucket_index v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 and v = ref v in
    while !v <> 0 do
      v := !v lsr 1;
      Stdlib.incr bits
    done;
    min (n_buckets - 1) !bits
  end

(* inclusive upper bound of bucket [i]; the last bucket is unbounded but
   serializes with its nominal bound *)
let bucket_le i = if i = 0 then 0 else (1 lsl i) - 1

let observe h v =
  if Atomic.get enabled then begin
    let cell = Domain.DLS.get h.hkey in
    cell.hcount <- cell.hcount + 1;
    cell.hsum <- cell.hsum + max 0 v;
    let i = bucket_index v in
    cell.hbuckets.(i) <- cell.hbuckets.(i) + 1
  end

let observe_s h seconds =
  observe h (int_of_float (Float.round (Clock.clamp seconds *. 1e6)))

(* like snapshot, meaningful once recording domains have quiesced *)
let reset () =
  with_registry (fun () ->
      List.iter
        (fun c -> List.iter (fun cell -> cell.cv <- 0) !(c.ccells))
        !all_counters;
      List.iter
        (fun h ->
          List.iter
            (fun cell ->
              cell.hcount <- 0;
              cell.hsum <- 0;
              Array.fill cell.hbuckets 0 n_buckets 0)
            !(h.hcells))
        !all_histograms)

(* ------------------------------------------------------------------ *)
(* snapshots *)

type hist_snapshot = {
  name : string;
  count : int;
  sum : int;
  buckets : (int * int) list; (* inclusive upper bound, count *)
}

type snapshot = {
  counters : (string * int) list;
  histograms : hist_snapshot list;
}

(* Only live data is captured (zero counters and empty histograms are
   dropped) and everything is name-sorted, so a snapshot is independent
   of registration order and of which modules happened to be linked. *)
let snapshot () =
  with_registry (fun () ->
      let counters =
        List.filter_map
          (fun c ->
            let v = List.fold_left (fun a cell -> a + cell.cv) 0 !(c.ccells) in
            if v = 0 then None else Some (c.cname, v))
          !all_counters
        |> List.sort compare
      in
      let histograms =
        List.filter_map
          (fun (h : histogram) ->
            let cells = !(h.hcells) in
            let count = List.fold_left (fun a c -> a + c.hcount) 0 cells in
            if count = 0 then None
            else
              let sum = List.fold_left (fun a c -> a + c.hsum) 0 cells in
              let buckets = ref [] in
              for i = n_buckets - 1 downto 0 do
                let n =
                  List.fold_left (fun a c -> a + c.hbuckets.(i)) 0 cells
                in
                if n > 0 then buckets := (bucket_le i, n) :: !buckets
              done;
              Some { name = h.hname; count; sum; buckets = !buckets })
          !all_histograms
        |> List.sort compare
      in
      { counters; histograms })

let absorb s =
  (* raw adds into the calling domain's cells, not gated on [enabled]:
     absorbing a worker's shipped snapshot is an explicit aggregation
     step, not instrumentation *)
  List.iter
    (fun (name, v) ->
      let c = counter name in
      let cell = Domain.DLS.get c.ckey in
      cell.cv <- cell.cv + v)
    s.counters;
  List.iter
    (fun (hs : hist_snapshot) ->
      let h = histogram hs.name in
      let cell = Domain.DLS.get h.hkey in
      cell.hcount <- cell.hcount + hs.count;
      cell.hsum <- cell.hsum + hs.sum;
      List.iter
        (fun (le, n) ->
          let i = bucket_index le in
          cell.hbuckets.(i) <- cell.hbuckets.(i) + n)
        hs.buckets)
    s.histograms

let snapshot_equal (a : snapshot) (b : snapshot) = a = b

(* ------------------------------------------------------------------ *)
(* JSON (schema in docs/FORMAT.md) *)

let snapshot_to_json s =
  Json.Obj
    [ ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters) );
      ( "histograms",
        Json.List
          (List.map
             (fun h ->
               Json.Obj
                 [ ("name", Json.String h.name);
                   ("count", Json.Int h.count);
                   ("sum", Json.Int h.sum);
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (le, n) ->
                            Json.Obj
                              [ ("le", Json.Int le); ("count", Json.Int n) ])
                          h.buckets) ) ])
             s.histograms) ) ]

let hist_of_json ~path json =
  let ( let* ) = Result.bind in
  let* name = Json.get_string ~path "name" json in
  let* count = Json.get_int ~path "count" json in
  let* sum = Json.get_int ~path "sum" json in
  let* buckets =
    Json.get_list ~path "buckets"
      (fun ~path b ->
        let* le = Json.get_int ~path "le" b in
        let* n = Json.get_int ~path "count" b in
        Ok (le, n))
      json
  in
  Ok { name; count; sum; buckets }

(* ------------------------------------------------------------------ *)
(* quantile estimation from the log buckets: the value returned is the
   inclusive upper bound of the bucket where the cumulative count first
   reaches the rank, i.e. an upper estimate within one power of two *)

let quantile (h : hist_snapshot) q =
  if h.count <= 0 then 0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      max 1 (int_of_float (Float.ceil (q *. float_of_int h.count)))
    in
    let rec walk cum = function
      | [] -> ( match List.rev h.buckets with (le, _) :: _ -> le | [] -> 0)
      | (le, n) :: rest ->
          let cum = cum + n in
          if cum >= rank then le else walk cum rest
    in
    walk 0 h.buckets
  end

type hist_summary = {
  name : string;
  count : int;
  sum : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
}

let summarize (h : hist_snapshot) =
  { name = h.name; count = h.count; sum = h.sum;
    mean = float_of_int h.sum /. float_of_int (max 1 h.count);
    p50 = quantile h 0.50; p95 = quantile h 0.95; p99 = quantile h 0.99 }

let summary (s : snapshot) = List.map summarize s.histograms

let snapshot_of_json ?(path = []) json =
  let ( let* ) = Result.bind in
  let* counters_json = Json.get_field ~path "counters" json in
  let* counters =
    match counters_json with
    | Json.Obj fields ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.Int v) :: rest -> go ((k, v) :: acc) rest
          | (k, v) :: _ ->
              Json.decode_error
                ~path:(path @ [ "counters"; k ])
                (Printf.sprintf "expected an int, found %s" (Json.type_name v))
        in
        go [] fields
    | v ->
        Json.decode_error ~path:(path @ [ "counters" ])
          (Printf.sprintf "expected an object, found %s" (Json.type_name v))
  in
  let* histograms = Json.get_list ~path "histograms" hist_of_json json in
  Ok { counters; histograms }
