(** Span recorder: phase-level wall-clock tracing for the whole
    batch/shard/fleet pipeline, serialized as Chrome trace-event JSON
    (loadable in Perfetto or [chrome://tracing]).

    A {e span} is one timed region — [parse], [dag_build],
    [heur_static], [heur_dynamic], [schedule], [verify], [json_encode],
    the pool's [queue_wait]/[task_run], the fleet's
    [spawn]/[attempt]/[merge] — with a category, Chrome [pid]/[tid]
    lane coordinates and free-form [args].  In this tree [pid] is the
    fleet coordinate (0 = the orchestrator / any single-process run,
    [shard + 1] = that shard's worker process) and [tid] is the OCaml
    domain id, so a fleet trace shows one process lane per worker and
    one thread lane per domain.

    Recording is disabled by default and costs one atomic read per
    {!with_span} when disabled — reports stay byte-identical.  When
    enabled ([schedtool --trace]), spans accumulate in per-domain
    lock-free buffers (each domain CASes onto its own slot; no shared
    mutex on the record path) that {!snapshot} merges into one
    deterministic order; fleet workers ship their buffer home inside
    the worker report JSON, and the orchestrator {!inject}s them
    (re-homed with {!reassign_pid}) into its own buffer to form the
    single fleet-wide timeline.

    Besides spans the recorder holds {e counter events} ("ph":"C") —
    cumulative gauges such as heap words and GC collection counts,
    recorded by {!Resource} at phase boundaries — which Perfetto
    renders as counter tracks alongside the spans.

    Timestamps come from {!Clock} and are {e absolute} epoch
    microseconds: trace viewers normalize to the earliest event, and
    absolute stamps are what make cross-process merging a no-op. *)

type span = {
  name : string;            (** phase label, e.g. ["dag_build"] *)
  cat : string;             (** category, e.g. ["pipeline"], ["pool"] *)
  ts_us : float;            (** start, absolute epoch microseconds *)
  dur_us : float;           (** duration in microseconds, [>= 0] *)
  pid : int;                (** fleet coordinate: 0 = orchestrator *)
  tid : int;                (** OCaml domain id *)
  args : (string * Json.t) list;
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Drop every recorded span (the enabled state is unchanged). *)
val reset : unit -> unit

(** [with_span name f] runs [f ()]; when enabled, records a span from
    entry to exit (also on exception, so aborted phases still appear on
    the timeline).  When disabled this is just [f ()]. *)
val with_span :
  ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** Low-level recording for sites that already hold both endpoints
    (fleet attempt windows, pool queue waits).  [start_s]/[stop_s] are
    {!Clock.now} values; the duration is clamped non-negative.  The span
    lands with [pid = 0] and the calling domain's [tid].  Not gated on
    {!enabled} — call sites guard. *)
val record :
  ?cat:string ->
  ?args:(string * Json.t) list ->
  name:string ->
  start_s:float ->
  stop_s:float ->
  unit ->
  unit

(** Append pre-built spans verbatim (the fleet merge path). *)
val inject : span list -> unit

val reassign_pid : int -> span -> span

(** All recorded spans in a deterministic chronological order
    (timestamp, then pid/tid/duration/name, full content as the final
    tiebreak). *)
val snapshot : unit -> span list

(** {1 Counter events}

    A counter event samples one or more named series at a point in
    time; Chrome/Perfetto draw each [cname] as a counter track with one
    line per series.  Recorded at phase boundaries by {!Resource}
    (heap words, GC collections). *)

type counter = {
  cname : string;                  (** track name, e.g. ["heap"] *)
  cts_us : float;                  (** absolute epoch microseconds *)
  cpid : int;                      (** fleet coordinate, like spans *)
  ctid : int;                      (** OCaml domain id *)
  values : (string * float) list;  (** series sampled at this instant *)
}

(** Record a counter sample at [Clock.now] from the calling domain.
    Not gated on {!enabled} — call sites guard, like {!record}. *)
val record_counter :
  ?pid:int -> name:string -> values:(string * float) list -> unit -> unit

(** Deterministic order (timestamp, pid/tid/name, content). *)
val snapshot_counters : unit -> counter list

(** Append pre-built counters verbatim (the fleet merge path). *)
val inject_counters : counter list -> unit

val reassign_counter_pid : int -> counter -> counter

(** {1 Chrome trace-event JSON}

    Schema in docs/FORMAT.md ("trace").  {!to_json} wraps the spans as
    [{"traceEvents": [...]}] with one complete ("ph":"X") event per
    span and one "ph":"C" event per counter sample, prefixing a
    ["process_name"] metadata event for each pid named in [pid_names]
    that actually appears (in spans or counters).  {!events_of_json} /
    {!counters_of_json} are total over arbitrary JSON, skip events of
    other phases, and round trip {!to_json} exactly on their
    respective lists. *)

val span_to_json : span -> Json.t

val to_json :
  ?pid_names:(int * string) list -> ?counters:counter list -> span list ->
  Json.t

val events_of_json :
  ?path:string list -> Json.t -> (span list, Json.error) result

val counters_of_json :
  ?path:string list -> Json.t -> (counter list, Json.error) result

(** {1 Per-phase aggregation} *)

type phase_stat = {
  phase : string;
  spans : int;
  total_us : float;
  max_us : float;
}

(** Aggregate spans by name, sorted by descending total duration (ties
    by name) — the data behind the [--trace]/[--metrics] stderr
    summary table. *)
val summary : span list -> phase_stat list
