(** Prometheus / OpenMetrics text exposition for the observability
    registries — the rendering behind the serve daemon's
    [client --metrics-text] and [schedtool top].

    Pure string building over already-captured data ({!Metrics.snapshot}
    values, {!Window.stats}, scalar gauges): no registry access, no
    gating — callers decide what to expose.  Conventions follow the
    Prometheus text format: one [# TYPE] line per family, metric names
    sanitized to [[a-zA-Z0-9_]] (the registry's dot namespacing maps
    ["serve.requests"] to ["serve_requests"]), counters suffixed
    [_total], histograms rendered as cumulative [_bucket{le="..."}]
    series capped by [le="+Inf"] plus [_sum]/[_count].  Every family
    name gets the [prefix] (default ["dagsched_"]). *)

type typ = Counter | Gauge | Histogram

(** Map every character outside [[a-zA-Z0-9_]] to ['_']; prepend ['_']
    when the result would start with a digit. *)
val sanitize : string -> string

(** Render a sample value: integral floats without a fraction
    (["42"]), others via [%g]; non-finite values as ["NaN"] /
    ["+Inf"] / ["-Inf"] per the exposition format. *)
val value_string : float -> string

(** [family buf ~prefix typ name] appends the [# TYPE] line.  [name]
    is sanitized and prefixed; counters get [_total] appended (here
    and in their samples). *)
val family : Buffer.t -> prefix:string -> typ -> string -> unit

(** [sample buf ~prefix ?labels name v] appends one sample line.
    Label values are escaped (backslash, quote, newline). *)
val sample :
  Buffer.t -> prefix:string -> ?labels:(string * string) list ->
  string -> float -> unit

(** Counter family + single sample ([_total]). *)
val counter : Buffer.t -> prefix:string -> string -> int -> unit

(** Gauge family + single sample. *)
val gauge : Buffer.t -> prefix:string -> string -> float -> unit

(** Histogram family + cumulative [_bucket{le="..."}] lines (one per
    populated log bucket, inclusive upper bounds from the snapshot,
    then [le="+Inf"]) + [_sum] + [_count]. *)
val histogram : Buffer.t -> prefix:string -> Metrics.hist_snapshot -> unit

(** Every counter (as [_total]) and histogram in a registry
    snapshot. *)
val snapshot : Buffer.t -> prefix:string -> Metrics.snapshot -> unit

(** Windowed RED stats, grouped into four gauge families per window
    name — [<name>_window_count], [<name>_window_rate],
    [<name>_window_error_ratio] (labelled [window="10s"]) and
    [<name>_window_duration_us] (labelled [window=...,quantile=...] for
    0.5/0.95/0.99).  The input order of windows is preserved within
    each family. *)
val windows : Buffer.t -> prefix:string -> Window.stats list -> unit
