(** Prometheus text exposition rendering.  See prom.mli for the
    contract. *)

type typ = Counter | Gauge | Histogram

let typ_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let sanitize name =
  let mapped =
    String.map
      (fun c ->
        if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9') || c = '_'
        then c
        else '_')
      name
  in
  if mapped = "" then "_"
  else if mapped.[0] >= '0' && mapped.[0] <= '9' then "_" ^ mapped
  else mapped

let value_string v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* a counter family's name carries the [_total] suffix on both the
   TYPE line and its samples *)
let full_name ~prefix typ name =
  prefix ^ sanitize name ^ (match typ with Counter -> "_total" | _ -> "")

let family buf ~prefix typ name =
  Buffer.add_string buf
    (Printf.sprintf "# TYPE %s %s\n" (full_name ~prefix typ name)
       (typ_string typ))

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let add_labels buf = function
  | [] -> ()
  | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (sanitize k);
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label_value v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

(* [name] arrives pre-suffixed by the caller (counter/histogram pieces
   append their own suffixes before sampling) *)
let sample buf ~prefix ?(labels = []) name v =
  Buffer.add_string buf prefix;
  Buffer.add_string buf (sanitize name);
  add_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (value_string v);
  Buffer.add_char buf '\n'

let counter buf ~prefix name v =
  family buf ~prefix Counter name;
  sample buf ~prefix (name ^ "_total") (float_of_int v)

let gauge buf ~prefix name v =
  family buf ~prefix Gauge name;
  sample buf ~prefix name v

let histogram buf ~prefix (h : Metrics.hist_snapshot) =
  family buf ~prefix Histogram h.name;
  let cumulative = ref 0 in
  List.iter
    (fun (le, n) ->
      cumulative := !cumulative + n;
      sample buf ~prefix
        ~labels:[ ("le", string_of_int le) ]
        (h.name ^ "_bucket")
        (float_of_int !cumulative))
    h.buckets;
  sample buf ~prefix ~labels:[ ("le", "+Inf") ] (h.name ^ "_bucket")
    (float_of_int h.count);
  sample buf ~prefix (h.name ^ "_sum") (float_of_int h.sum);
  sample buf ~prefix (h.name ^ "_count") (float_of_int h.count)

let snapshot buf ~prefix (s : Metrics.snapshot) =
  List.iter (fun (name, v) -> counter buf ~prefix name v) s.counters;
  List.iter (fun h -> histogram buf ~prefix h) s.histograms

let window_label (w : Window.stats) = Printf.sprintf "%gs" w.window_s

let windows buf ~prefix (ws : Window.stats list) =
  let names =
    List.fold_left
      (fun acc (w : Window.stats) ->
        if List.mem w.name acc then acc else acc @ [ w.name ])
      [] ws
  in
  List.iter
    (fun name ->
      let mine =
        List.filter (fun (w : Window.stats) -> w.name = name) ws
      in
      let g suffix value =
        family buf ~prefix Gauge (name ^ suffix);
        List.iter
          (fun w ->
            sample buf ~prefix
              ~labels:[ ("window", window_label w) ]
              (name ^ suffix) (value w))
          mine
      in
      g "_window_count" (fun (w : Window.stats) -> float_of_int w.count);
      g "_window_rate" (fun (w : Window.stats) -> w.rate);
      g "_window_error_ratio" (fun (w : Window.stats) -> w.error_ratio);
      family buf ~prefix Gauge (name ^ "_window_duration_us");
      List.iter
        (fun (w : Window.stats) ->
          List.iter
            (fun (q, v) ->
              sample buf ~prefix
                ~labels:[ ("window", window_label w); ("quantile", q) ]
                (name ^ "_window_duration_us")
                (float_of_int v))
            [ ("0.5", w.p50_us); ("0.95", w.p95_us); ("0.99", w.p99_us) ])
        mine)
    names
