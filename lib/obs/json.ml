(** Hand-rolled JSON, used for the machine-readable perf reports
    (BENCH_parallel.json, schedtool batch --json) and the observability
    layer's trace/metrics serialization.  No external deps.

    Historically this lived in [Ds_util.Stats.Json]; it moved here so the
    observability layer ({!Trace}, {!Metrics}) can sit below [ds_util].
    [Ds_util.Stats.Json] remains a transparent alias, so existing callers
    and type equalities are unchanged. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest of %.12g / %.17g that reads back exactly; always spelled as
   a float so a round trip preserves the Int/Float distinction.  JSON
   has no nan/infinity, and %g would happily print both ("nan", "inf"),
   producing unparseable output — every non-finite float is encoded as
   null here so no caller can emit invalid JSON. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

exception Error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape");
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                if
                  String.for_all
                    (function
                      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
                      | _ -> false)
                    hex
                then int_of_string ("0x" ^ hex)
                else fail "bad \\u escape"
              in
              (* surrogate halves are not scalar values; Uchar.of_int
                 would raise Invalid_argument and escape of_string's
                 Error channel entirely *)
              if not (Uchar.is_valid code) then fail "bad \\u escape";
              pos := !pos + 4;
              Buffer.add_utf_8_uchar buf (Uchar.of_int code)
          | _ -> fail "unknown escape");
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do advance () done;
    let text = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let type_name = function
  | Null -> "null"
  | Bool _ -> "a bool"
  | Int _ -> "an int"
  | Float _ -> "a float"
  | String _ -> "a string"
  | List _ -> "a list"
  | Obj _ -> "an object"

(* ---------------------------------------------------------------- *)
(* Typed decode errors for schema readers (Batch.report_of_json and
   friends).  A decoder threads the path from the document root down
   to the offending value, so a malformed report names the exact
   field instead of a bare "bad JSON". *)

type error = { path : string list; message : string }

let error_to_string e =
  match e.path with
  | [] -> e.message
  | segs -> Printf.sprintf "$.%s: %s" (String.concat "." segs) e.message

(* the parser's [exception Error] shadows the result constructor, so
   qualify *)
let decode_error ~path message = Result.Error { path; message }

let index_seg name i = Printf.sprintf "%s[%d]" name i

(* field accessors rooted at [path]; missing field and wrong type are
   distinguished in the message *)
let get_field ~path k json =
  match json with
  | Obj _ -> (
      match member k json with
      | Some v -> Ok v
      | None -> decode_error ~path:(path @ [ k ]) "missing field")
  | v ->
      decode_error ~path
        (Printf.sprintf "expected an object, found %s" (type_name v))

let get_int ~path k json =
  match get_field ~path k json with
  | Ok (Int i) -> Ok i
  | Ok v ->
      decode_error ~path:(path @ [ k ])
        (Printf.sprintf "expected an int, found %s" (type_name v))
  | Error _ as e -> e

(* [Int] promotes; [Null] reads back as [nan] — the writer encodes
   every non-finite float as null, so this keeps round trips total *)
let get_float ~path k json =
  match get_field ~path k json with
  | Ok (Float f) -> Ok f
  | Ok (Int i) -> Ok (float_of_int i)
  | Ok Null -> Ok Float.nan
  | Ok v ->
      decode_error ~path:(path @ [ k ])
        (Printf.sprintf "expected a number, found %s" (type_name v))
  | Error _ as e -> e

let get_string ~path k json =
  match get_field ~path k json with
  | Ok (String s) -> Ok s
  | Ok v ->
      decode_error ~path:(path @ [ k ])
        (Printf.sprintf "expected a string, found %s" (type_name v))
  | Error _ as e -> e

(* [get_list ~path k decode json] decodes field [k] as a list,
   applying [decode] to each element with its indexed path. *)
let get_list ~path k decode json =
  match get_field ~path k json with
  | Ok (List xs) ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match decode ~path:(path @ [ index_seg k i ]) x with
            | Ok v -> go (i + 1) (v :: acc) rest
            | Error _ as e -> e)
      in
      go 0 [] xs
  | Ok v ->
      decode_error ~path:(path @ [ k ])
        (Printf.sprintf "expected a list, found %s" (type_name v))
  | Error _ as e -> e

let decode_string ~path = function
  | String s -> Ok s
  | v ->
      decode_error ~path
        (Printf.sprintf "expected a string, found %s" (type_name v))
