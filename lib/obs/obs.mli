(** Cross-process observability enablement (fleet orchestrator to
    worker), via the [DAGSCHED_OBS] environment variable. *)

(** ["DAGSCHED_OBS"]. *)
val env_var : string

(** A comma-separated subset of ["trace"], ["metrics"], ["resource"]
    matching the enabled recorders, or [None] when none is enabled —
    what an orchestrator should export to child processes.  {!Log} has
    its own variables ({!Log.env_exports}). *)
val env_value : unit -> string option

(** Enable {!Trace}/{!Metrics}/{!Resource} according to [DAGSCHED_OBS]
    (unset, empty, or unknown tokens are ignored), then apply {!Log}'s
    environment ({!Log.init_from_env}).  Called by [schedtool worker]
    before any work. *)
val init_from_env : unit -> unit
