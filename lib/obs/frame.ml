(** Length-prefixed framing: ASCII decimal byte count, '\n', payload.
    See frame.mli for the contract. *)

let default_max_bytes = 16 * 1024 * 1024

(* the longest header we accept: a decimal count for default_max_bytes
   is 8 digits; 20 digits covers any 62-bit count before we call the
   header malformed (a peer streaming garbage must not grow our buffer) *)
let max_header_digits = 20

let encode s = Printf.sprintf "%d\n%s" (String.length s) s

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd buf pos len in
    write_all fd buf (pos + n) (len - n)
  end

let write fd s =
  let framed = encode s in
  write_all fd framed 0 (String.length framed)

type error =
  | Closed
  | Timeout
  | Oversized of int
  | Malformed of string

let error_to_string = function
  | Closed -> "connection closed"
  | Timeout -> "read timeout"
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds the cap" n
  | Malformed msg -> "malformed frame header: " ^ msg

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;             (* staging buffer for header-side reads *)
  mutable pending : string;  (* received but not yet consumed (small:
                                at most one staging buffer per fill) *)
}

let reader fd = { fd; buf = Bytes.create 65536; pending = "" }

(* One read(2) into [dst].  EINTR retries (a SIGINT mid-read must not
   tear a frame — the daemon's drain flag is checked between requests);
   EAGAIN/EWOULDBLOCK surface as [Timeout] (serve arms SO_RCVTIMEO per
   connection so a stalled client cannot wedge the accept loop); a
   reset peer reads as EOF. *)
let rec read_once fd dst pos len =
  match Unix.read fd dst pos len with
  | n -> Ok n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_once fd dst pos len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error Timeout
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Ok 0

(* pull more bytes into [pending]; [Ok false] on EOF *)
let fill r =
  match read_once r.fd r.buf 0 (Bytes.length r.buf) with
  | Ok 0 -> Ok false
  | Ok n ->
      r.pending <- r.pending ^ Bytes.sub_string r.buf 0 n;
      Ok true
  | Error e -> Error e

let parse_header h =
  if h = "" then Error (Malformed "empty length line")
  else if String.length h > max_header_digits then
    Error (Malformed "length line too long")
  else if not (String.for_all (fun c -> c >= '0' && c <= '9') h) then
    Error (Malformed (Printf.sprintf "%S is not a decimal byte count" h))
  else
    match int_of_string_opt h with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Malformed (Printf.sprintf "%S is not a decimal byte count" h))

let read ?(max_bytes = default_max_bytes) r =
  (* the payload proper is read with exact-size reads into a dedicated
     buffer — [pending] only ever holds what one staging fill over-read
     past a frame boundary, so large frames never cost quadratic
     re-concatenation *)
  let read_payload n =
    let have = min n (String.length r.pending) in
    let payload = Bytes.create n in
    Bytes.blit_string r.pending 0 payload 0 have;
    r.pending <-
      String.sub r.pending have (String.length r.pending - have);
    let rec go pos =
      if pos >= n then Ok (Bytes.unsafe_to_string payload)
      else
        match read_once r.fd payload pos (n - pos) with
        | Ok 0 -> Error Closed (* torn mid-frame: header promised more *)
        | Ok k -> go (pos + k)
        | Error e -> Error e
    in
    go have
  in
  let rec await_header () =
    match String.index_opt r.pending '\n' with
    | Some i -> (
        let h = String.sub r.pending 0 i in
        match parse_header h with
        | Error e -> Error e
        | Ok n when n > max_bytes -> Error (Oversized n)
        | Ok n ->
            r.pending <-
              String.sub r.pending (i + 1) (String.length r.pending - i - 1);
            read_payload n)
    | None ->
        if String.length r.pending > max_header_digits then
          Error (Malformed "length line too long")
        else (
          match fill r with
          | Ok true -> await_header ()
          | Ok false -> Error Closed
          | Error e -> Error e)
  in
  await_header ()
