(** Hand-rolled JSON, used for the machine-readable perf reports
    ([BENCH_parallel.json], [BENCH_shard.json], [schedtool batch/shard
    --json]) and for the observability layer's trace/metrics
    serialization.  The writer emits floats with a representation that
    reads back exactly and always carries a [.]/[e] so a round trip
    preserves the [Int]/[Float] distinction.  JSON has no nan/infinity:
    every non-finite [Float] is encoded as [null] (so the writer can
    never produce invalid JSON), and readers of specific schemas may map
    [Null] float fields back to [nan] to make their round trip total
    (see {!Ds_driver.Batch.report_of_json}).

    This module used to live at [Ds_util.Stats.Json]; that path is still
    a transparent alias of this one. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Parse one JSON value (the whole input).  Total: malformed input of
    any shape (truncations, bad escapes, surrogate [\u] halves, stray
    bytes) comes back as [Error], never as an escaping exception. *)
val of_string : string -> (t, string) result

(** Field lookup on [Obj]; [None] on missing field or non-object. *)
val member : string -> t -> t option

(** ["an int"], ["an object"], ... — for decode error messages. *)
val type_name : t -> string

(** Typed decode error: the path of object fields / list indices from
    the document root to the offending value, plus what went wrong.
    Produced by the schema readers ({!Ds_driver.Batch.report_of_json},
    {!Ds_driver.Shard.merged_of_json}, {!Ds_driver.Fleet}, the
    {!Trace}/{!Metrics} readers) so a malformed document names the exact
    field. *)
type error = { path : string list; message : string }

(** ["$.aggregate.blocks: expected an int, found a string"]. *)
val error_to_string : error -> string

val decode_error : path:string list -> string -> ('a, error) result

(** [index_seg "per_shard" 3] is ["per_shard[3]"]. *)
val index_seg : string -> int -> string

(** Field accessors rooted at [path]: [get_* ~path k json] reads field
    [k] of object [json], distinguishing missing fields, wrong value
    types and a non-object [json] in the error.  {!get_float} promotes
    [Int] and maps [Null] to [nan] (the writer encodes every
    non-finite float as [null], so this keeps round trips total). *)
val get_field : path:string list -> string -> t -> (t, error) result

val get_int : path:string list -> string -> t -> (int, error) result
val get_float : path:string list -> string -> t -> (float, error) result
val get_string : path:string list -> string -> t -> (string, error) result

(** [get_list ~path k decode json] decodes field [k] as a list,
    applying [decode] to each element with its indexed path. *)
val get_list :
  path:string list ->
  string ->
  (path:string list -> t -> ('a, error) result) ->
  t ->
  ('a list, error) result

(** Decode one value (not a field) as a string. *)
val decode_string : path:string list -> t -> (string, error) result
