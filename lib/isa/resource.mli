(** Dependence resources: anything an instruction can define or use such
    that a later instruction touching the same resource creates a data
    dependency — registers, condition codes, the Y register and memory
    (one resource per symbolic expression, or the single serialized
    [Mem_all]). *)

type t =
  | R of Reg.t          (* integer or floating point register *)
  | Icc                 (* integer condition codes *)
  | Fcc                 (* floating point condition codes *)
  | Y                   (* multiply/divide Y register *)
  | Mem of Mem_expr.t   (* one symbolic memory expression *)
  | Mem_all             (* all of memory, serialized *)
  | Ctrl                (* control resource *)

(** [of_reg r] is [R r] from a preallocated table — allocation-free on
    the resource-extraction hot path. *)
val of_reg : Reg.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_memory : t -> bool
val is_register : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Hash tables keyed by resources — the "record of the last definition of
    a resource and the set of current uses" of table-building DAG
    construction. *)
module Tbl : Hashtbl.S with type key = t

(** Dense id assignment in order of first encounter; the table grows when
    a new symbolic memory expression appears, reproducing the
    variable-length-bitmap cost the paper observed on fpppp. *)
module Ids : sig
  type resource = t
  type t

  val create : unit -> t

  (** Id of the resource, assigned on first encounter. *)
  val id : t -> resource -> int

  val find_opt : t -> resource -> int option
  val resource : t -> int -> resource
  val count : t -> int
  val iter : (int -> resource -> unit) -> t -> unit
end
