(** Dependence resources.

    A resource is anything an instruction can define or use such that a
    later instruction touching the same resource creates a data dependency:
    general and floating point registers, the condition code registers, the
    multiply/divide Y register, and memory.  Memory appears either as a
    single serialized resource ([Mem_all], when disambiguation is off) or
    as one resource per unique symbolic address expression ([Mem]) — the
    paper's variable-length resource table grows as new expressions are
    met. *)

type t =
  | R of Reg.t          (* integer or floating point register *)
  | Icc                 (* integer condition codes *)
  | Fcc                 (* floating point condition codes *)
  | Y                   (* multiply/divide Y register *)
  | Mem of Mem_expr.t   (* one symbolic memory expression *)
  | Mem_all             (* all of memory, serialized *)
  | Ctrl                (* control resource: branches/calls order via it *)

let equal a b =
  match (a, b) with
  | R x, R y -> Reg.equal x y
  | Icc, Icc | Fcc, Fcc | Y, Y | Mem_all, Mem_all | Ctrl, Ctrl -> true
  | Mem x, Mem y -> Mem_expr.equal x y
  | (R _ | Icc | Fcc | Y | Mem _ | Mem_all | Ctrl), _ -> false

let compare a b =
  let tag = function
    | R _ -> 0 | Icc -> 1 | Fcc -> 2 | Y -> 3 | Mem _ -> 4 | Mem_all -> 5
    | Ctrl -> 6
  in
  match (a, b) with
  | R x, R y -> Reg.compare x y
  | Mem x, Mem y -> Mem_expr.compare x y
  | _ -> Int.compare (tag a) (tag b)

let hash = function
  | R r -> Reg.hash r
  | Icc -> 1000
  | Fcc -> 1001
  | Y -> 1002
  | Mem m -> 2000 + Mem_expr.hash m
  | Mem_all -> 1003
  | Ctrl -> 1004

(* Registers are dense, so the [R r] wrappers are preallocated once and
   resource extraction on the DAG-build hot path allocates nothing. *)
let r_int = Array.init 32 (fun n -> R (Reg.Int n))
let r_float = Array.init 32 (fun n -> R (Reg.Float n))

let of_reg = function
  | Reg.Int n -> r_int.(n)
  | Reg.Float n -> r_float.(n)

let is_memory = function Mem _ | Mem_all -> true | R _ | Icc | Fcc | Y | Ctrl -> false

let is_register = function R _ -> true | Icc | Fcc | Y | Mem _ | Mem_all | Ctrl -> false

let to_string = function
  | R r -> Reg.to_string r
  | Icc -> "%icc"
  | Fcc -> "%fcc"
  | Y -> "%y"
  | Mem m -> Mem_expr.to_string m
  | Mem_all -> "[mem]"
  | Ctrl -> "<ctrl>"

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Hash table keyed by resources; the id-assigning variant below is the
    "record of the last definition of a resource and the set of current
    uses" table that gives table-building DAG construction its name. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** Dense id assignment for resources, in order of first encounter.  The
    table length grows when a new symbolic memory expression appears,
    reproducing the cost characteristic the paper observed on fpppp. *)
module Ids = struct
  type resource = t

  type t = {
    ids : int Tbl.t;
    mutable by_id : resource array;
    mutable next : int;
  }

  let create () = { ids = Tbl.create 64; by_id = Array.make 64 Ctrl; next = 0 }

  let id t r =
    match Tbl.find_opt t.ids r with
    | Some i -> i
    | None ->
        let i = t.next in
        t.next <- i + 1;
        if i >= Array.length t.by_id then begin
          let grown = Array.make (2 * Array.length t.by_id) Ctrl in
          Array.blit t.by_id 0 grown 0 (Array.length t.by_id);
          t.by_id <- grown
        end;
        t.by_id.(i) <- r;
        Tbl.add t.ids r i;
        i

  let find_opt t r = Tbl.find_opt t.ids r
  let resource t i = t.by_id.(i)
  let count t = t.next

  let iter f t =
    for i = 0 to t.next - 1 do
      f i t.by_id.(i)
    done
end
