(** Instructions and their defined/used resources.

    Operands follow SPARC assembler order: sources first, destination last.
    [defs]/[uses] extract dependence resources with the conventions the
    paper relies on:

    - [%g0] is hardwired to zero and never a resource;
    - condition-code setters define [%icc]/[%fcc], conditional branches use
      them;
    - integer multiply defines the [%y] register, divide uses it;
    - double-word loads define a register *pair* (and stores use one), the
      case the paper cites for per-destination RAW delay differences;
    - double-word memory references touch both the named symbolic address
      expression and the one four bytes above it;
    - memory references yield a [Resource.Mem] carrying the symbolic
      address expression; the DAG builders decide aliasing via a
      disambiguation strategy. *)

type t = {
  index : int;                  (* position within the program *)
  op : Opcode.t;
  operands : Operand.t list;
  annul : bool;                 (* branch annul bit (",a") *)
  label : string option;        (* label attached to this instruction *)
}

let make ?(index = -1) ?(annul = false) ?label op operands =
  { index; op; operands; annul; label }

let with_index t index = { t with index }

(** Reusable resource-scan buffer — the allocation-free core behind
    [defs]/[uses_with_pos].  Definition and use positions are always the
    sequential 0-based emission index, so a scan is just the resource
    array plus a length; DAG builders keep one buffer per domain and
    loop over indices instead of consuming lists.  The scan helpers
    below are top-level and thread the buffer explicitly, so a scan
    allocates nothing beyond the (preallocated) [Resource.t] values —
    only double-word memory operands create a fresh second-word
    expression. *)
module Scan = struct
  type buf = { mutable res : Resource.t array; mutable len : int }

  let create () = { res = Array.make 8 Resource.Ctrl; len = 0 }

  let push b r =
    if b.len >= Array.length b.res then begin
      let grown = Array.make (2 * Array.length b.res) Resource.Ctrl in
      Array.blit b.res 0 grown 0 b.len;
      b.res <- grown
    end;
    b.res.(b.len) <- r;
    b.len <- b.len + 1

  let len b = b.len
  let res b i = b.res.(i)
end

(* Every non-%g0 register operand, in operand order. *)
let rec push_all_reg_srcs b ops =
  match ops with
  | [] -> ()
  | Operand.Reg r :: rest ->
      if not (Reg.is_zero r) then Scan.push b (Resource.of_reg r);
      push_all_reg_srcs b rest
  | (Operand.Imm _ | Operand.Mem _ | Operand.Target _) :: rest ->
      push_all_reg_srcs b rest

(* Register sources: all operands except the last (the destination). *)
let rec push_reg_srcs_except_last b ops =
  match ops with
  | [] | [ _ ] -> ()
  | Operand.Reg r :: rest ->
      if not (Reg.is_zero r) then Scan.push b (Resource.of_reg r);
      push_reg_srcs_except_last b rest
  | (Operand.Imm _ | Operand.Mem _ | Operand.Target _) :: rest ->
      push_reg_srcs_except_last b rest

let push_pair_partner b r =
  match Reg.pair_partner r with
  | Some r2 -> Scan.push b (Resource.of_reg r2)
  | None -> ()

(* Store value sources: each non-%g0 register operand, with the pair
   partner after it for double-word stores. *)
let rec push_store_values b ~double ops =
  match ops with
  | [] -> ()
  | Operand.Reg r :: rest ->
      if not (Reg.is_zero r) then begin
        Scan.push b (Resource.of_reg r);
        if double then push_pair_partner b r
      end;
      push_store_values b ~double rest
  | (Operand.Imm _ | Operand.Mem _ | Operand.Target _) :: rest ->
      push_store_values b ~double rest

let push_mem_base b m =
  match m.Mem_expr.base with
  | Mem_expr.Breg r when not (Reg.is_zero r) -> Scan.push b (Resource.of_reg r)
  | Mem_expr.Breg _ | Mem_expr.Bsym _ -> ()

(* Base registers of memory operands (store address sources). *)
let rec push_mem_bases b ops =
  match ops with
  | [] -> ()
  | Operand.Mem m :: rest ->
      push_mem_base b m;
      push_mem_bases b rest
  | (Operand.Reg _ | Operand.Imm _ | Operand.Target _) :: rest ->
      push_mem_bases b rest

let push_mem_exprs b ~double m =
  Scan.push b (Resource.Mem m);
  if double then
    Scan.push b (Resource.Mem { m with Mem_expr.offset = m.Mem_expr.offset + 4 })

(* Load sources: per memory operand, the base register then the touched
   expression(s). *)
let rec push_load_srcs b ~double ops =
  match ops with
  | [] -> ()
  | Operand.Mem m :: rest ->
      push_mem_base b m;
      push_mem_exprs b ~double m;
      push_load_srcs b ~double rest
  | (Operand.Reg _ | Operand.Imm _ | Operand.Target _) :: rest ->
      push_load_srcs b ~double rest

(* Store defs: the touched memory expression(s). *)
let rec push_store_defs b ~double ops =
  match ops with
  | [] -> ()
  | Operand.Mem m :: rest ->
      push_mem_exprs b ~double m;
      push_store_defs b ~double rest
  | (Operand.Reg _ | Operand.Imm _ | Operand.Target _) :: rest ->
      push_store_defs b ~double rest

(* Register destination (last operand); double-word destinations include
   the pair partner. *)
let rec push_dest b ~double ops =
  match ops with
  | [] -> ()
  | [ Operand.Reg r ] ->
      if not (Reg.is_zero r) then begin
        Scan.push b (Resource.of_reg r);
        if double then push_pair_partner b r
      end
  | [ Operand.Imm _ | Operand.Mem _ | Operand.Target _ ] -> ()
  | _ :: rest -> push_dest b ~double rest

let scan_defs b t =
  b.Scan.len <- 0;
  let open Opcode in
  match t.op with
  | Cmp | Fcmps | Fcmpd ->
      (* compares have no register destination *)
      if sets_icc t.op then Scan.push b Resource.Icc;
      if sets_fcc t.op then Scan.push b Resource.Fcc
  | St | Stb | Sth | Stf | Std | Stdf ->
      (* store: [src; mem]; defines the memory expression(s) *)
      push_store_defs b ~double:(is_doubleword t.op) t.operands
  | Call | Jmpl ->
      (* conservative call effects when a call is kept inside a block *)
      Scan.push b (Resource.of_reg (Reg.Int 8));
      Scan.push b (Resource.of_reg (Reg.Int 9));
      Scan.push b (Resource.of_reg (Reg.Int 15));
      Scan.push b Resource.Icc;
      Scan.push b Resource.Fcc;
      Scan.push b Resource.Y;
      Scan.push b Resource.Mem_all
  | Ba | Bn | Be | Bne | Bg | Ble | Bge | Bl | Bgu | Bleu | Bcs | Bcc_
  | Fba | Fbe | Fbne | Fbg | Fbl | Fbge | Fble | Ret | Nop ->
      ()
  | Save | Restore -> push_dest b ~double:false t.operands
  | _ ->
      push_dest b ~double:(is_doubleword t.op) t.operands;
      if sets_icc t.op then Scan.push b Resource.Icc;
      (match t.op with
      | Smul | Umul -> Scan.push b Resource.Y
      | _ -> ())

let scan_uses b t =
  b.Scan.len <- 0;
  let open Opcode in
  match t.op with
  | Nop | Sethi | Ba | Bn | Fba | Save | Restore | Ret
  | Be | Bne | Bg | Ble | Bge | Bl | Bgu | Bleu | Bcs | Bcc_
  | Fbe | Fbne | Fbg | Fbl | Fbge | Fble ->
      if reads_icc t.op then Scan.push b Resource.Icc;
      if reads_fcc t.op then Scan.push b Resource.Fcc
  | Call | Jmpl ->
      Scan.push b (Resource.of_reg (Reg.Int 8));
      Scan.push b (Resource.of_reg (Reg.Int 9));
      Scan.push b (Resource.of_reg (Reg.Int 10));
      Scan.push b (Resource.of_reg (Reg.Int 11));
      Scan.push b (Resource.of_reg (Reg.Int 12));
      Scan.push b (Resource.of_reg (Reg.Int 13));
      Scan.push b Resource.Mem_all
  | Cmp | Fcmps | Fcmpd ->
      (* all operands are sources *)
      push_all_reg_srcs b t.operands
  | St | Stb | Sth | Stf | Std | Stdf ->
      (* store: value source(s) first, then base register(s) *)
      let double = is_doubleword t.op in
      push_store_values b ~double t.operands;
      push_mem_bases b t.operands
  | Ld | Ldd | Ldub | Ldsb | Lduh | Ldsh | Ldf | Lddf ->
      push_load_srcs b ~double:(is_doubleword t.op) t.operands
  | _ ->
      (* ALU / FP ops: all operands except the last (destination) *)
      push_reg_srcs_except_last b t.operands;
      (match t.op with
      | Sdiv | Udiv -> Scan.push b Resource.Y
      | _ -> ())

(** Resources defined by the instruction, in definition order (a register
    pair lists the even register first).  List view over {!scan_defs}. *)
let defs t =
  let b = Scan.create () in
  scan_defs b t;
  List.init b.Scan.len (fun i -> b.Scan.res.(i))

(** Resources used by the instruction, paired with the source-operand
    position (0-based) for asymmetric-bypass latency models.  List view
    over {!scan_uses} (positions are the emission indices). *)
let uses_with_pos t =
  let b = Scan.create () in
  scan_uses b t;
  List.init b.Scan.len (fun i -> (b.Scan.res.(i), i))

let uses t = List.map fst (uses_with_pos t)

(** True when the instruction both reads memory and is a load (used by the
    structural statistics for unique memory expressions). *)
let memory_expr t =
  List.find_map
    (function Operand.Mem m -> Some m | Operand.Reg _ | Operand.Imm _ | Operand.Target _ -> None)
    t.operands

let is_branch t = Opcode.is_branch t.op
let is_call t = Opcode.is_call t.op
let alters_window t = Opcode.alters_window t.op

let to_string t =
  let mnemonic =
    Opcode.to_string t.op ^ if t.annul then ",a" else ""
  in
  let ops = String.concat ", " (List.map Operand.to_string t.operands) in
  let body =
    if ops = "" then Printf.sprintf "\t%s" mnemonic
    else Printf.sprintf "\t%s %s" mnemonic ops
  in
  match t.label with
  | Some l -> Printf.sprintf "%s:\n%s" l body
  | None -> body

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Structural equality ignoring program position. *)
let equal_ignoring_index a b =
  a.op = b.op && a.annul = b.annul
  && List.length a.operands = List.length b.operands
  && List.for_all2 Operand.equal a.operands b.operands
