(** Dagsched — a faithful reproduction of

    {e Smotherman, Krishnamurthy, Aravind, Hunnicutt: "Efficient DAG
    Construction and Heuristic Calculation for Instruction Scheduling",
    Proc. MICRO-24, 1991.}

    The library covers basic-block instruction scheduling end to end:

    - a SPARC-like ISA with parser/printer ({!Reg}, {!Opcode}, {!Insn},
      {!Parser});
    - machine timing models, a pipeline simulator and reservation tables
      ({!Latency}, {!Pipeline}, {!Reservation});
    - basic-block formation ({!Block}, {!Cfg_builder});
    - five DAG construction algorithms — compare-against-all
      forward/backward, table-building forward/backward, and two
      transitive-arc-avoiding variants ({!Builder}, {!Dag});
    - the paper's 26 scheduling heuristics with their Table-1 taxonomy
      ({!Heuristic}), static annotation passes ({!Static_pass}) and
      dynamic evaluators ({!Dynamic});
    - a generic list scheduler plus the six published algorithms of
      Table 2 ({!Engine}, {!Published});
    - workload generators calibrated to the paper's Table 3
      ({!Profiles}) and the paper's own numbers as data ({!Paper_data});
    - a mini-language compiler for writing kernels ({!Ast}, {!Codegen},
      {!Kernels}).

    Quickstart:
    {[
      let block = List.hd (Dagsched.Codegen.compile_to_blocks Dagsched.Kernels.daxpy) in
      let dag = Dagsched.Builder.build Dagsched.Builder.Table_forward
                  Dagsched.Opts.default block in
      let sched = Dagsched.Published.(run_on_dag warren) dag in
      Printf.printf "cycles: %d -> %d\n"
        (Dagsched.Schedule.original_cycles sched)
        (Dagsched.Schedule.cycles sched)
    ]} *)

(* utilities *)
module Prng = Ds_util.Prng
module Bitset = Ds_util.Bitset
module Stats = Ds_util.Stats
module Table = Ds_util.Table
module Pool = Ds_util.Pool

(* observability: monotonic-leaning clock, span tracing (Chrome
   trace-event export), metrics registry, structured event log,
   per-phase GC/heap profiling, cross-process enablement.  The GC
   profiler is [Obs_resource] here because [Resource] names the ISA's
   machine-resource module below. *)
module Json = Ds_obs.Json
module Clock = Ds_obs.Clock
module Trace = Ds_obs.Trace
module Metrics = Ds_obs.Metrics
module Log = Ds_obs.Log
module Window = Ds_obs.Window
module Prom = Ds_obs.Prom
module Frame = Ds_obs.Frame
module Obs_resource = Ds_obs.Resource
module Explain = Ds_obs.Explain
module Obs = Ds_obs.Obs

(* ISA *)
module Reg = Ds_isa.Reg
module Mem_expr = Ds_isa.Mem_expr
module Resource = Ds_isa.Resource
module Opcode = Ds_isa.Opcode
module Operand = Ds_isa.Operand
module Insn = Ds_isa.Insn
module Parser = Ds_isa.Parser
module Interp = Ds_isa.Interp

(* machine model *)
module Dep = Ds_machine.Dep
module Funit = Ds_machine.Funit
module Latency = Ds_machine.Latency
module Pipeline = Ds_machine.Pipeline
module Superscalar = Ds_machine.Superscalar
module Reservation = Ds_machine.Reservation

(* basic blocks *)
module Block = Ds_cfg.Block
module Cfg_builder = Ds_cfg.Builder
module Summary = Ds_cfg.Summary

(* DAG construction *)
module Dag = Ds_dag.Dag
module Dag_legacy = Ds_dag.Dag_legacy
module Opts = Ds_dag.Opts
module Builder = Ds_dag.Builder
module Disambiguate = Ds_dag.Disambiguate
module Pairdep = Ds_dag.Pairdep
module Closure = Ds_dag.Closure
module Dag_stats = Ds_dag.Dag_stats
module Dot = Ds_dag.Dot

(* heuristics *)
module Heuristic = Ds_heur.Heuristic
module Annot = Ds_heur.Annot
module Static_pass = Ds_heur.Static_pass
module Level = Ds_heur.Level
module Liveness = Ds_heur.Liveness
module Dyn_state = Ds_heur.Dyn_state
module Dynamic = Ds_heur.Dynamic
module Evaluate = Ds_heur.Evaluate

(* scheduling *)
module Engine = Ds_sched.Engine
module Schedule = Ds_sched.Schedule
module Verify = Ds_sched.Verify
module Fixup = Ds_sched.Fixup
module Published = Ds_sched.Published
module Optimal = Ds_sched.Optimal
module Global = Ds_sched.Global
module Delay_slot = Ds_sched.Delay_slot
module Resv_sched = Ds_sched.Resv_sched
module Reglimit = Ds_sched.Reglimit
module Gantt = Ds_sched.Gantt
module Emit = Ds_sched.Emit

(* parallel batch driver + corpus sharding + multi-process fleet +
   scheduling-as-a-service daemon with its result cache *)
module Batch = Ds_driver.Batch
module Shard = Ds_driver.Shard
module Fleet = Ds_driver.Fleet
module Cache = Ds_driver.Cache
module Serve = Ds_driver.Serve

(* workloads *)
module Gen = Ds_workload.Gen
module Profiles = Ds_workload.Profiles
module Paper_data = Ds_workload.Paper_data
module Sweep = Ds_workload.Sweep

(* mini-language *)
module Ast = Ds_codegen.Ast
module Codegen = Ds_codegen.Codegen
module Kernels = Ds_codegen.Kernels
