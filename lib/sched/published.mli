(** The six published instruction scheduling algorithms of the paper's
    Table 2, encoded as data and runnable: Gibbons & Muchnick,
    Krishnamurthy, Schlansker, Shieh & Papachristou, Tiemann (GCC) and
    Warren. *)

open Ds_heur

type spec = {
  name : string;
  short : string;
  reference : string;
  dag_algorithm : Ds_dag.Builder.algorithm option;  (* None = "n.g." *)
  sched_direction : Dyn_state.direction;
  mode : Engine.mode;
  keys : Engine.key list;        (* Table 2's ranked heuristics *)
  postpass_fixup : bool;
}

val gibbons_muchnick : spec
val krishnamurthy : spec
val schlansker : spec
val shieh_papachristou : spec
val tiemann : spec
val warren : spec

val all : spec list
val by_short : string -> spec option

(** The builder an "n.g." algorithm falls back to. *)
val default_builder : Ds_dag.Builder.algorithm

val builder : spec -> Ds_dag.Builder.algorithm
val engine_config : spec -> Engine.config

(** The heuristics the spec's keys rank (for [Static_pass.compute_for]). *)
val heuristics_of : spec -> Heuristic.t list

(** Build the spec's DAG for a block and run its scheduling pass (plus
    fixup when the algorithm uses one).  The intermediate pass computes
    only the annotations the spec's heuristics need. *)
val run : ?opts:Ds_dag.Opts.t -> spec -> Ds_cfg.Block.t -> Schedule.t

(** Run only the scheduling pass on an existing DAG. *)
val run_on_dag : spec -> Ds_dag.Dag.t -> Schedule.t
