(** Generic list-scheduling engine.

    "List scheduling algorithms examine a candidate list of ready-to-execute
    instructions at each time step and apply one or more heuristics to
    determine the best instruction to issue" (§1).  The engine supports:

    - forward and backward scheduling passes (a backward pass schedules
      from the leaves and reverses the result);
    - *winnowing*: heuristics applied in rank order, each narrowing the
      candidate set (Gibbons & Muchnick, Shieh & Papachristou, Warren);
    - a *priority function*: heuristic values combined into a single
      per-node priority by rank weighting (Krishnamurthy, Schlansker,
      Tiemann — marked "(priority fn)" in Table 2).

    Ties always fall back to original program order. *)

open Ds_heur

type mode = Winnowing | Priority_fn

type key = { heuristic : Heuristic.t; sense : Heuristic.sense }

let key ?sense heuristic =
  let sense =
    match sense with Some s -> s | None -> Heuristic.default_sense heuristic
  in
  { heuristic; sense }

type config = {
  direction : Dyn_state.direction;
  mode : mode;
  keys : key list;
}

(* Signed value: larger is always better after applying the sense. *)
let signed_value k ~annot ~st i =
  let v = Evaluate.value k.heuristic ~annot ~st i in
  match k.sense with Heuristic.Maximize -> v | Heuristic.Minimize -> -v

(* Final tie-break: original program order — the first remaining
   instruction in a forward pass, the last in a backward pass. *)
let order_tie direction candidates =
  match (direction : Dyn_state.direction) with
  | Dyn_state.Forward -> List.fold_left min max_int candidates
  | Dyn_state.Backward -> List.fold_left max min_int candidates

(* Winnowing: narrow the candidate list one heuristic at a time, keeping
   the nodes tied for the best value. *)
let pick_winnowing direction keys ~annot ~st candidates =
  let rec narrow candidates = function
    | [] -> order_tie direction candidates
    | k :: rest ->
        let best =
          List.fold_left
            (fun acc i -> max acc (signed_value k ~annot ~st i))
            min_int candidates
        in
        let survivors =
          List.filter (fun i -> signed_value k ~annot ~st i = best) candidates
        in
        (match survivors with
        | [ only ] -> only
        | several -> narrow several rest)
  in
  narrow candidates keys

(* Priority function: rank-weighted sum of signed values; earlier ranks
   dominate by an order of magnitude.  [priority_best] returns the full
   top-priority tie set so the tracer can tell when the program-order
   fallback fired. *)
let priority_best keys ~annot ~st candidates =
  let nkeys = List.length keys in
  let weight rank = int_of_float (10.0 ** float_of_int (nkeys - rank)) in
  let priority i =
    List.fold_left
      (fun (acc, rank) k ->
        (acc + (weight rank * signed_value k ~annot ~st i), rank + 1))
      (0, 1) keys
    |> fst
  in
  let best = ref [] and best_p = ref min_int in
  List.iter
    (fun i ->
      let p = priority i in
      if p > !best_p then begin
        best := [ i ];
        best_p := p
      end
      else if p = !best_p then best := i :: !best)
    candidates;
  !best

let pick_priority direction keys ~annot ~st candidates =
  order_tie direction (priority_best keys ~annot ~st candidates)

(* ------------------------------------------------------------------ *)
(* decision tracing: which heuristic actually decided each issue *)

(** One scheduling decision: the ready candidates at [time], the
    winnowing trail (survivors after each applied heuristic, with the
    winning value), the chosen node, and whether the program-order
    tie-break made the final call.  A forced decision (single ready
    candidate) has an empty trail.  Priority-fn configs report a
    *restricted narrowing* trail — each rank keeps the best of the
    previous rank's survivors — which matches the weighted sum except
    when a low rank's magnitude overflows its weight. *)
type decision = {
  time : int;
  candidates : int list;
  trail : (Heuristic.t * int * int list) list;
      (* heuristic, best signed value, survivors *)
  chosen : int;
  tie_break : bool;
}

let winnow_trail direction keys ~annot ~st candidates =
  let rec narrow acc candidates = function
    | [] ->
        (List.rev acc, order_tie direction candidates,
         match candidates with [] | [ _ ] -> false | _ -> true)
    | k :: rest ->
        let best =
          List.fold_left
            (fun b i -> max b (signed_value k ~annot ~st i))
            min_int candidates
        in
        let survivors =
          List.filter (fun i -> signed_value k ~annot ~st i = best) candidates
        in
        let acc = (k.heuristic, best, survivors) :: acc in
        (match survivors with
        | [ only ] -> (List.rev acc, only, false)
        | several -> narrow acc several rest)
  in
  narrow [] candidates keys

(* Restricted narrowing for a priority function: the same lexicographic
   walk, run alongside the real weighted-sum winner.  [overruled] marks
   decisions where the weighted sum's winner is not among the narrowing
   survivors — i.e. a lower rank's value magnitude overflowed the 10×
   weight separation and beat the rank order. *)
let priority_trail direction keys ~annot ~st candidates =
  let best_set = priority_best keys ~annot ~st candidates in
  let chosen = order_tie direction best_set in
  let tie_break = match best_set with [] | [ _ ] -> false | _ -> true in
  let rec narrow acc survivors = function
    | [] -> (List.rev acc, survivors)
    | k :: rest ->
        let best =
          List.fold_left
            (fun b i -> max b (signed_value k ~annot ~st i))
            min_int survivors
        in
        let survivors =
          List.filter (fun i -> signed_value k ~annot ~st i = best) survivors
        in
        let acc = (k.heuristic, best, survivors) :: acc in
        (match survivors with
        | [ _ ] -> (List.rev acc, survivors)
        | several -> narrow acc several rest)
  in
  let trail, final = narrow [] candidates keys in
  let overruled = not (List.mem chosen final) in
  (trail, chosen, tie_break, overruled)

(* [traced_pick] returns (trail, chosen, tie_break, overruled); the
   chosen node is always identical to what the untraced [pick] would
   return on the same state. *)
let traced_pick config ~annot ~st candidates =
  match candidates with
  | [ only ] -> ([], only, false, false)
  | _ -> (
      match config.mode with
      | Winnowing ->
          let trail, chosen, tie_break =
            winnow_trail config.direction config.keys ~annot ~st candidates
          in
          (trail, chosen, tie_break, false)
      | Priority_fn ->
          priority_trail config.direction config.keys ~annot ~st candidates)

(* ------------------------------------------------------------------ *)
(* decisiveness registry hookup (Ds_obs.Explain) *)

(* A strategy's registry key is derived from the config itself — the
   engine has no notion of a strategy name — and embeds the key order,
   so colliding signatures always agree on ranks. *)
(* Display names already carry their natural direction ("max path
   length to a leaf"), so only a non-default sense is annotated. *)
let key_label k =
  let base = Heuristic.to_string k.heuristic in
  if k.sense = Heuristic.default_sense k.heuristic then base
  else
    match k.sense with
    | Heuristic.Maximize -> base ^ " (maximized)"
    | Heuristic.Minimize -> base ^ " (minimized)"

let key_labels config = List.map key_label config.keys

let signature_of config =
  (match config.direction with
  | Dyn_state.Forward -> "forward"
  | Dyn_state.Backward -> "backward")
  ^ "/"
  ^ (match config.mode with
    | Winnowing -> "winnowing"
    | Priority_fn -> "priority")
  ^ ": "
  ^ String.concat " > " (key_labels config)

(* Signature strings are built once per (domain, config) — the cache is
   domain-local so no lock is taken on the pick path. *)
let signature_cache : (config, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let signature config =
  let tbl = Domain.DLS.get signature_cache in
  match Hashtbl.find_opt tbl config with
  | Some s -> s
  | None ->
      let s = signature_of config in
      Hashtbl.add tbl config s;
      s

let explain_observe config ~ncand ~trail ~forced ~tie_break ~overruled =
  Ds_obs.Explain.observe ~signature:(signature config)
    ~keys:(key_labels config) ~candidates:ncand
    ~survivor_counts:(List.map (fun (_, _, s) -> List.length s) trail)
    ~forced ~tie_break ~overruled ()

(* Per-block handle: the scheduling loop resolves the strategy's
   registry accumulator once and records per pick with no hashing. *)
let explain_cell config =
  if Ds_obs.Explain.enabled () then
    Some
      (Ds_obs.Explain.cell ~signature:(signature config)
         ~keys:(key_labels config))
  else None

let explain_record cell ~ncand ~trail ~forced ~tie_break ~overruled =
  Ds_obs.Explain.record cell ~candidates:ncand
    ~survivor_counts:(List.map (fun (_, _, s) -> List.length s) trail)
    ~forced ~tie_break ~overruled

(* Choose the best candidate.  The singleton fast path skips the key
   walk entirely — both modes trivially return the only candidate — and
   is what the decisiveness stats count as a *forced* decision.  When
   the explain registry is live the trail is computed so the decision's
   shape can be recorded; otherwise this is one atomic read on top of
   the bare winnowing/priority pick. *)
let bare_pick config ~annot ~st candidates =
  match config.mode with
  | Winnowing ->
      pick_winnowing config.direction config.keys ~annot ~st candidates
  | Priority_fn ->
      pick_priority config.direction config.keys ~annot ~st candidates

let pick config ~annot ~st candidates =
  match candidates with
  | [ only ] ->
      if Ds_obs.Explain.enabled () then
        explain_observe config ~ncand:1 ~trail:[] ~forced:true
          ~tie_break:false ~overruled:false;
      only
  | _ ->
      if not (Ds_obs.Explain.enabled ()) then
        bare_pick config ~annot ~st candidates
      else begin
        let trail, chosen, tie_break, overruled =
          traced_pick config ~annot ~st candidates
        in
        explain_observe config ~ncand:(List.length candidates) ~trail
          ~forced:false ~tie_break ~overruled;
        chosen
      end

(* observability: per-issue ready-list lengths, stall-cycle totals and
   the accumulated dynamic-heuristic (pick) time — all no-ops unless
   schedtool --metrics/--trace enabled them *)
let ready_len_hist = Ds_obs.Metrics.histogram "sched.ready_len"
let pick_us_hist = Ds_obs.Metrics.histogram "sched.pick_us"
let stall_counter = Ds_obs.Metrics.counter "sched.stall_cycles"

(* The scheduling loop, optionally recording decisions. *)
let run_impl ?seed ?recorder config ~annot dag =
  let n = Ds_dag.Dag.length dag in
  if n = 0 then [||]
  else begin
    let st = Dyn_state.create dag config.direction in
    (match seed with Some f -> f st | None -> ());
    let available = ref [] in
    for i = n - 1 downto 0 do
      if Dyn_state.available st i then available := i :: !available
    done;
    (* metrics/trace bookkeeping is resolved once per block; the common
       (disabled) path costs two atomic reads per run_impl call *)
    let metrics_on = Ds_obs.Metrics.is_enabled () in
    let trace_on = Ds_obs.Trace.enabled () in
    (* decisiveness accumulator resolved once per block; [None] when the
       explain registry is off, leaving the pick path untouched *)
    let expl = explain_cell config in
    let picks = ref 0 and pick_first = ref 0.0 and pick_total = ref 0.0 in
    let order = ref [] in
    while not (Dyn_state.complete st) do
      let ready = List.filter (fun i -> st.earliest_exec.(i) <= st.time) !available in
      if metrics_on then
        Ds_obs.Metrics.observe ready_len_hist (List.length ready);
      match ready with
      | [] ->
          (* no candidate can issue: advance to the nearest release time *)
          let next =
            List.fold_left
              (fun acc i -> min acc st.earliest_exec.(i))
              max_int !available
          in
          assert (next < max_int);
          Ds_obs.Metrics.add stall_counter (next - st.time);
          st.time <- next
      | _ ->
          let do_pick () =
            match (recorder, expl) with
            | None, None -> (
                match ready with
                | [ only ] -> only
                | _ -> bare_pick config ~annot ~st ready)
            | None, Some cell -> (
                match ready with
                | [ only ] ->
                    Ds_obs.Explain.record cell ~candidates:1
                      ~survivor_counts:[] ~forced:true ~tie_break:false
                      ~overruled:false;
                    only
                | _ ->
                    let trail, chosen, tie_break, overruled =
                      traced_pick config ~annot ~st ready
                    in
                    explain_record cell ~ncand:(List.length ready) ~trail
                      ~forced:false ~tie_break ~overruled;
                    chosen)
            | Some record, _ ->
                let trail, chosen, tie_break, overruled =
                  traced_pick config ~annot ~st ready
                in
                (* the recorder branch bypasses [pick], so feed the
                   decisiveness registry here (no double count) *)
                (match expl with
                | Some cell ->
                    let forced =
                      match ready with [ _ ] -> true | _ -> false
                    in
                    explain_record cell ~ncand:(List.length ready) ~trail
                      ~forced ~tie_break ~overruled
                | None -> ());
                record
                  { time = st.time; candidates = ready; trail; chosen;
                    tie_break };
                chosen
          in
          let chosen =
            if not (metrics_on || trace_on) then do_pick ()
            else begin
              let t0 = Ds_obs.Clock.now () in
              if !picks = 0 then pick_first := t0;
              let c = do_pick () in
              let dt = Ds_obs.Clock.since t0 in
              pick_total := !pick_total +. dt;
              incr picks;
              Ds_obs.Metrics.observe_s pick_us_hist dt;
              c
            end
          in
          Dyn_state.schedule st chosen ~at:st.time;
          st.time <- st.time + 1;
          order := chosen :: !order;
          available := List.filter (fun i -> i <> chosen) !available;
          List.iter
            (fun (a : Ds_dag.Dag.arc) ->
              let peer = Dyn_state.arc_peer st a in
              if Dyn_state.available st peer
                 && not (List.mem peer !available)
              then available := peer :: !available)
            (Dyn_state.forward_arcs st chosen)
    done;
    (* one aggregate span per block: total dynamic-heuristic time spent
       inside the enclosing "schedule" span (the picks themselves are
       interleaved with issue bookkeeping, so a contiguous sub-span per
       pick would be noise; args carry the pick count) *)
    if trace_on && !picks > 0 then
      Ds_obs.Trace.record ~cat:"pipeline" ~name:"heur_dynamic"
        ~args:
          [ ("picks", Ds_obs.Json.Int !picks);
            ("aggregate", Ds_obs.Json.Bool true) ]
        ~start_s:!pick_first
        ~stop_s:(!pick_first +. !pick_total)
        ();
    let order = !order in
    (* a backward pass built the schedule last-to-first *)
    match config.direction with
    | Dyn_state.Forward -> Array.of_list (List.rev order)
    | Dyn_state.Backward -> Array.of_list order
  end

(** Run the scheduling pass.  Returns node ids in program order of the new
    schedule.  [seed] can prime the state with inherited cross-block
    latencies before the candidate list is formed. *)
let run ?seed config ~annot dag = run_impl ?seed config ~annot dag

(** Like {!run}, also returning the per-issue decision trace (in issue
    order, regardless of scheduling direction). *)
let run_traced ?seed config ~annot dag =
  let decisions = ref [] in
  let order =
    run_impl ?seed ~recorder:(fun d -> decisions := d :: !decisions) config
      ~annot dag
  in
  (order, List.rev !decisions)

(** Convenience: schedule with static annotations computed here. *)
let schedule config dag =
  let annot = Static_pass.compute dag in
  run config ~annot dag
