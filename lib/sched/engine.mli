(** Generic list-scheduling engine (paper §1): forward and backward
    passes; heuristics combined by lexicographic *winnowing* or a
    rank-weighted *priority function* (Table 2's two styles); ties fall
    back to original program order. *)

open Ds_heur

type mode = Winnowing | Priority_fn

type key = { heuristic : Heuristic.t; sense : Heuristic.sense }

(** [key ?sense h] defaults the sense to [Heuristic.default_sense h]. *)
val key : ?sense:Heuristic.sense -> Heuristic.t -> key

type config = {
  direction : Dyn_state.direction;
  mode : mode;
  keys : key list;   (* rank order *)
}

(** Choose the best candidate under the config (exposed for schedulers
    built on top of the engine, e.g. register-limited scheduling).  A
    single-candidate list returns it without consulting any heuristic.
    When [Ds_obs.Explain] is enabled every call records the decision's
    shape (ranks consulted, eliminations, tie-breaks) into the
    decisiveness registry; disabled, that is one atomic read. *)
val pick : config -> annot:Annot.t -> st:Dyn_state.t -> int list -> int

(** Stable identity of a config in the decisiveness registry: direction,
    mode and the ranked key labels (see {!key_labels}). *)
val signature : config -> string

(** Rank-ordered display labels, e.g. ["max path length to a leaf"]. *)
val key_labels : config -> string list

(** Run the scheduling pass; returns node ids in the new program order.
    [seed] can prime the state with inherited cross-block latencies. *)
val run :
  ?seed:(Dyn_state.t -> unit) -> config -> annot:Annot.t -> Ds_dag.Dag.t ->
  int array

(** One scheduling decision: the ready candidates at [time], the
    winnowing trail (heuristic applied, best signed value, survivors),
    the chosen node, and whether the program-order tie-break made the
    final call.  A forced decision (single ready candidate) has an empty
    trail.  Priority-fn configs report a restricted-narrowing trail:
    each rank keeps the best of the previous rank's survivors, which
    matches the weighted sum except when a low rank's value magnitude
    overflows the 10× weight separation ([chosen] is always the true
    weighted-sum winner). *)
type decision = {
  time : int;
  candidates : int list;
  trail : (Heuristic.t * int * int list) list;
  chosen : int;
  tie_break : bool;
}

(** Like {!run}, also returning the per-issue decision trace. *)
val run_traced :
  ?seed:(Dyn_state.t -> unit) -> config -> annot:Annot.t -> Ds_dag.Dag.t ->
  int array * decision list

(** Convenience: compute all static annotations here, then {!run}. *)
val schedule : config -> Ds_dag.Dag.t -> int array
